"""Named recovery profiles: the congestion-control / recovery lab.

A :class:`RecoveryProfile` composes the three strategy axes the
endpoint machinery exposes —

* congestion control (:data:`~repro.quic.cc.CC_CONTROLLERS`),
* loss detection (:data:`~repro.quic.recovery.LOSS_DETECTORS`),
* acknowledgment policy (:class:`AckPolicy` and friends)

— into one frozen, hashable value carried by name. Scenarios reference
profiles as plain strings (``Scenario(recovery_profile="cubic")``), so
scenario fingerprints, suite dedup, and the disk cache key on the
profile without pickling strategy objects; the
:class:`~repro.interop.runner.Runner` resolves the name through
:func:`get_recovery_profile` at execution time.

The ``"default"`` profile is special: it reproduces the pre-lab
behavior byte-identically (NewReno, RFC 9002 packet+time loss
detection, the :class:`~repro.impls.profile.ImplProfile`-driven
delayed-ack cadence), keys exactly as before, and remains eligible for
the batch engine's affine replay. Every other profile is statically
gated to the scalar engine until its affine structure is proven
(see :meth:`repro.runtime.batch_engine.BatchEngine.supports`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.quic.cc import CC_CONTROLLERS
from repro.quic.recovery import LOSS_DETECTORS

if TYPE_CHECKING:  # pragma: no cover
    from repro.impls.profile import ImplProfile

#: Name the default profile is registered under; scenarios carry it as
#: their ``recovery_profile`` default and cache keys omit it.
DEFAULT_PROFILE_NAME = "default"


class AckPolicy:
    """Strategy for the application-space acknowledgment cadence.

    The default defers entirely to the client/server
    :class:`~repro.impls.profile.ImplProfile` (each stack's measured
    ``ack_every_n`` / ``max_ack_delay_ms``), which keeps the paper
    bundles byte-identical; the variants below override the cadence for
    the recovery-lab sweeps.
    """

    name = "default"

    def ack_every_n(self, profile: "ImplProfile") -> int:
        return profile.ack_every_n

    def max_ack_delay_ms(self, profile: "ImplProfile") -> float:
        return profile.max_ack_delay_ms


class ImmediateAckPolicy(AckPolicy):
    """Acknowledge every ack-eliciting packet immediately."""

    name = "immediate"

    def ack_every_n(self, profile: "ImplProfile") -> int:
        return 1

    def max_ack_delay_ms(self, profile: "ImplProfile") -> float:
        return 0.0


class DelayedAckPolicy(AckPolicy):
    """ACK-frequency style policy: acknowledge every ``every_n``
    eliciting packets, with an explicit delay cap."""

    name = "delayed"

    def __init__(self, every_n: int = 10, max_delay_ms: float = 25.0):
        if every_n < 1:
            raise ValueError("ack frequency must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max ack delay must be >= 0")
        self.every_n = every_n
        self.max_delay_ms = max_delay_ms

    def ack_every_n(self, profile: "ImplProfile") -> int:
        return self.every_n

    def max_ack_delay_ms(self, profile: "ImplProfile") -> float:
        return self.max_delay_ms


_ACK_POLICIES = (AckPolicy.name, ImmediateAckPolicy.name, DelayedAckPolicy.name)


@dataclass(frozen=True)
class RecoveryProfile:
    """One named point in the CC × loss-detection × ack-policy space."""

    name: str
    #: Congestion-controller strategy (:data:`~repro.quic.cc.CC_CONTROLLERS`).
    cc: str = "newreno"
    #: Loss-detection strategy (:data:`~repro.quic.recovery.LOSS_DETECTORS`).
    loss_detector: str = "rfc9002"
    #: Ack-policy strategy (``default`` / ``immediate`` / ``delayed``).
    ack_policy: str = "default"
    #: ``delayed`` policy knobs; ``None`` means the policy's defaults.
    ack_every_n: Optional[int] = None
    ack_max_delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cc not in CC_CONTROLLERS:
            raise ValueError(
                f"profile {self.name!r}: unknown congestion controller "
                f"{self.cc!r}; known: {sorted(CC_CONTROLLERS)}"
            )
        if self.loss_detector not in LOSS_DETECTORS:
            raise ValueError(
                f"profile {self.name!r}: unknown loss detector "
                f"{self.loss_detector!r}; known: {sorted(LOSS_DETECTORS)}"
            )
        if self.ack_policy not in _ACK_POLICIES:
            raise ValueError(
                f"profile {self.name!r}: unknown ack policy "
                f"{self.ack_policy!r}; known: {sorted(_ACK_POLICIES)}"
            )

    @property
    def is_default(self) -> bool:
        """Whether this profile reproduces the pre-lab behavior (and
        therefore keeps historical cache keys and batch eligibility)."""
        return (
            self.cc == "newreno"
            and self.loss_detector == "rfc9002"
            and self.ack_policy == "default"
        )

    def make_ack_policy(self) -> AckPolicy:
        if self.ack_policy == ImmediateAckPolicy.name:
            return ImmediateAckPolicy()
        if self.ack_policy == DelayedAckPolicy.name:
            return DelayedAckPolicy(
                every_n=self.ack_every_n if self.ack_every_n is not None else 10,
                max_delay_ms=(
                    self.ack_max_delay_ms
                    if self.ack_max_delay_ms is not None
                    else 25.0
                ),
            )
        return AckPolicy()

    def describe(self) -> str:
        return (
            f"{self.name} (cc={self.cc}, loss={self.loss_detector}, "
            f"ack={self.ack_policy})"
        )


#: Profile registry: name → profile. The vocabulary is documented in
#: the "Recovery profiles" section of API.md.
RECOVERY_PROFILES: Dict[str, RecoveryProfile] = {}


def register_profile(profile: RecoveryProfile) -> RecoveryProfile:
    if profile.name in RECOVERY_PROFILES:
        raise ValueError(f"duplicate recovery profile {profile.name!r}")
    RECOVERY_PROFILES[profile.name] = profile
    return profile


def get_recovery_profile(name: str) -> RecoveryProfile:
    """Resolve a profile by name; raises with the known vocabulary."""
    try:
        return RECOVERY_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery profile {name!r}; "
            f"known: {sorted(RECOVERY_PROFILES)}"
        ) from None


def profile_names() -> Tuple[str, ...]:
    """Registered profile names, default first, then alphabetical."""
    rest = sorted(n for n in RECOVERY_PROFILES if n != DEFAULT_PROFILE_NAME)
    return (DEFAULT_PROFILE_NAME, *rest)


DEFAULT_PROFILE = register_profile(RecoveryProfile(name=DEFAULT_PROFILE_NAME))
register_profile(RecoveryProfile(name="cubic", cc="cubic"))
register_profile(RecoveryProfile(name="packet-only", loss_detector="packet"))
register_profile(RecoveryProfile(name="time-only", loss_detector="time"))
register_profile(RecoveryProfile(name="immediate-ack", ack_policy="immediate"))
register_profile(
    RecoveryProfile(
        name="cubic-delayed-ack", cc="cubic", ack_policy="delayed", ack_every_n=10
    )
)
