"""The QUIC client connection.

Drives the handshake of Figure 3: send the ClientHello, process the
(instant or coalesced) ACK and ServerHello, complete the handshake
with the profile-specific second client flight, issue the HTTP
request, and receive the response. All implementation-specific
behavior comes from the :class:`~repro.impls.profile.ImplProfile`.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.http.base import HttpSemantics, RequestSpec
from repro.impls.profile import ImplProfile
from repro.qlog.writer import QlogWriter
from repro.quic.coalescing import Datagram
from repro.quic.connection import Endpoint
from repro.quic.frames import CryptoFrame, Frame, MaxDataFrame, StreamFrame
from repro.quic.packet import Packet, Space
from repro.quic.tls import (
    SERVER_HELLO_SIZE,
    client_finished,
    client_hello,
)
from repro.sim.engine import EventLoop


class ClientConnection(Endpoint):
    """A QUIC client performing one HTTP request."""

    is_client = True

    def __init__(
        self,
        loop: EventLoop,
        profile: ImplProfile,
        http: HttpSemantics,
        request: Optional[RequestSpec] = None,
        rng: Optional[random.Random] = None,
        qlog: Optional[QlogWriter] = None,
        name: str = "client",
        draws=None,
        recovery_profile=None,
    ):
        super().__init__(
            loop,
            profile,
            rng=rng,
            qlog=qlog,
            name=name,
            draws=draws,
            recovery_profile=recovery_profile,
        )
        if not profile.supports_http3 and http.name == "http/3":
            raise ValueError(f"{profile.name} does not implement HTTP/3")
        self.http = http
        self.request = request if request is not None else RequestSpec()
        self._second_flight_sent = False
        self._done = False
        self._response_stream_id = http.request_stream_id
        self._bytes_since_flow_update = 0
        self._flow_credit = 0

    # ------------------------------------------------------------------
    # connection start
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Send the first client flight: Initial[CRYPTO(ClientHello)]."""
        message = client_hello()
        offset, length = self.crypto_send[Space.INITIAL].append(message)
        frame = CryptoFrame(
            offset=offset,
            length=length,
            label=message.name,
            stream_total=self.crypto_send[Space.INITIAL].length,
        )
        packet = self.build_packet(Space.INITIAL, (frame,))
        self.stats.client_hello_sent_ms = self.loop.now
        self.send_packets([packet])

    # ------------------------------------------------------------------
    # handshake progress
    # ------------------------------------------------------------------

    def on_crypto_progress(self, space: Space) -> None:
        if space is Space.INITIAL and not self._has_handshake_keys:
            expected = self.crypto_expected[Space.INITIAL] or SERVER_HELLO_SIZE
            if self.crypto_recv[Space.INITIAL].has(expected):
                self._has_handshake_keys = True
                self.stats.server_hello_received_ms = self.loop.now
        if space is Space.HANDSHAKE and not self.handshake_complete:
            expected = self.crypto_expected[Space.HANDSHAKE]
            if expected and self.crypto_recv[Space.HANDSHAKE].has(expected):
                self._complete_handshake()

    def _complete_handshake(self) -> None:
        """Server flight fully received: derive 1-RTT keys, send the
        second client flight (Figure 3), and issue the request."""
        self._has_app_keys = True
        self.handshake_complete = True
        self.stats.handshake_complete_ms = self.loop.now
        if not self._second_flight_sent:
            self._send_second_flight()

    def _second_flight_datagram_count(self) -> int:
        if self.profile.second_flight_variants:
            roll = self.draws.second_flight_roll()
            cumulative = 0.0
            for variant in self.profile.second_flight_variants:
                cumulative += variant.probability
                if roll <= cumulative:
                    return variant.datagrams
            return self.profile.second_flight_variants[-1].datagrams
        return self.profile.second_flight_datagram_count

    def _send_second_flight(self) -> None:
        """Initial(ACK) + Handshake(CRYPTO[FIN], ACK) + 1-RTT(request),
        split across the number of UDP datagrams this implementation
        uses (paper Table 4)."""
        self._second_flight_sent = True
        fin = client_finished()
        offset, length = self.crypto_send[Space.HANDSHAKE].append(fin)
        fin_frame = CryptoFrame(
            offset=offset,
            length=length,
            label=fin.name,
            stream_total=self.crypto_send[Space.HANDSHAKE].length,
        )
        app_frames = self._request_frames()
        count = self._second_flight_datagram_count()

        initial_pkt = self.build_packet(Space.INITIAL, ())
        groups: List[List[Packet]]
        if count == 1:
            hs_pkt = self.build_packet(Space.HANDSHAKE, (fin_frame,))
            app_pkt = self.build_packet(Space.APPLICATION, tuple(app_frames))
            groups = [[initial_pkt, hs_pkt, app_pkt]]
        elif count == 2:
            hs_pkt = self.build_packet(Space.HANDSHAKE, (fin_frame,))
            app_pkt = self.build_packet(Space.APPLICATION, tuple(app_frames))
            groups = [[initial_pkt, hs_pkt], [app_pkt]]
        elif count == 3:
            hs_pkt = self.build_packet(Space.HANDSHAKE, (fin_frame,))
            app_pkt = self.build_packet(Space.APPLICATION, tuple(app_frames))
            groups = [[initial_pkt], [hs_pkt], [app_pkt]]
        else:
            hs_ack_pkt = self.build_packet(Space.HANDSHAKE, ())
            hs_fin_pkt = self.build_packet(
                Space.HANDSHAKE, (fin_frame,), include_ack=False
            )
            app_pkt = self.build_packet(Space.APPLICATION, tuple(app_frames))
            groups = [[initial_pkt], [hs_ack_pkt], [hs_fin_pkt], [app_pkt]]
        self.send_packets([], group_into_datagrams=groups)
        # RFC 9001 §4.9.1: a client discards Initial keys when it first
        # sends a Handshake packet.
        self.discard_space(Space.INITIAL)

    def _request_frames(self) -> List[Frame]:
        frames: List[Frame] = []
        for write in self.http.client_writes(self.request):
            stream = self.streams.get_send(write.stream_id)
            stream.label = write.label
            stream.write(write.size)
            if write.fin:
                stream.finish()
            chunk = stream.next_chunk(write.size)
            if chunk is None:
                continue
            offset, length, fin = chunk
            frames.append(
                StreamFrame(
                    stream_id=write.stream_id,
                    offset=offset,
                    length=length,
                    fin=fin,
                    label=write.label,
                )
            )
        return frames

    # ------------------------------------------------------------------
    # post-handshake events
    # ------------------------------------------------------------------

    def on_handshake_done(self) -> None:
        if self.handshake_confirmed:
            return
        self.handshake_confirmed = True
        self.stats.handshake_confirmed_ms = self.loop.now
        self.recovery.set_handshake_complete()
        # RFC 9001 §4.9.2: discard Handshake keys once the handshake
        # is confirmed.
        self.discard_space(Space.HANDSHAKE)

    def on_stream_data(self, frame: StreamFrame) -> None:
        self._bytes_since_flow_update += frame.length
        stream = self.streams.get_recv(self._response_stream_id)
        if stream.complete and self.stats.response_complete_ms is None:
            self.stats.response_complete_ms = self.loop.now
            self._done = True

    def _maybe_send_flow_update(self) -> None:
        """Grant connection flow-control credit (MAX_DATA) every
        ``flow_update_interval_bytes`` received — the ack-eliciting
        packets that give a downloading client RTT samples."""
        interval = self.profile.flow_update_interval_bytes
        if self._bytes_since_flow_update < interval or self._done:
            return
        if not self._has_app_keys or self.closed:
            return
        self._flow_credit += self._bytes_since_flow_update
        self._bytes_since_flow_update = 0
        packet = self.build_packet(
            Space.APPLICATION,
            (MaxDataFrame(maximum=self._flow_credit + 16 * interval),),
        )
        self.send_packets([packet])

    def after_datagram(self, dgram: Datagram) -> None:
        self._maybe_send_flow_update()
        if self._done and not self.closed:
            # Flush the final acknowledgment, then tear down locally.
            self._send_app_ack()
            self.finish()

    def _dup_cid_abort_applies(self) -> bool:
        # The quiche abort was observed for HTTP/1.1 only (§4.2).
        return self.http.name == "http/1.1"
