"""Loss detection and recovery (RFC 9002).

This module implements the machinery whose interaction with instant
ACK the paper analyzes:

* the RTT estimator (§5): the **first sample initializes**
  ``smoothed_rtt = sample`` and ``rttvar = sample/2``, so the first
  PTO is ``~3 x sample`` — and "the PTO initialization disregards
  [the acknowledgment] delay. Therefore, the only option to provide
  the client with an accurate PTO is via the instant ACK" (§2);
* the Probe Timeout (§6.2) with exponential backoff, reset when an
  ack-eliciting packet is sent or newly acknowledged and when keys
  are discarded;
* the anti-deadlock client PTO (§6.2.2.1): a client arms the PTO
  even with nothing in flight while the handshake is incomplete;
* packet- and time-threshold loss detection (§6.1).

Implementation quirks the paper documents (Appendix E/F) are exposed
as :class:`RecoveryConfig` switches so the eight client profiles can
reproduce their stacks' behavior:

* ``use_initial_ack_rtt_sample=False`` — picoquic "ignores the lower
  RTT induced by IACK";
* ``anti_deadlock_probe_from_sent_time=True`` — mvfst and picoquic:
  "receiving an instant ACK does not cause the client to send probe
  packets" (the anti-deadlock timer stays based on the default PTO at
  the last ack-eliciting send, instead of re-arming from *now* with
  the fresh RTT estimate);
* ``rtt_variant="aioquic"`` — aioquic "uses a different formula to
  calculate RTT variance";
* ``misinit_srtt_probability`` — go-x-net "partially initializes the
  smoothed RTT and RTT variation incorrectly".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.quic.frames import AckFrame
from repro.quic.packet import Packet, Space

#: RFC 9002 timer granularity (kGranularity), 1 ms.
GRANULARITY_MS = 1.0

#: RFC 9002 packet reordering threshold (kPacketThreshold).
PACKET_THRESHOLD = 3

#: RFC 9002 time reordering threshold (kTimeThreshold), 9/8.
TIME_THRESHOLD = 9.0 / 8.0

#: All packet number spaces in index order (mirrors the Space IntEnum).
_ALL_SPACES = (Space.INITIAL, Space.HANDSHAKE, Space.APPLICATION)


@dataclass(slots=True)
class RecoveryConfig:
    """Tunables and quirk switches for one endpoint's recovery."""

    #: PTO used before any RTT sample exists. RFC 9002 recommends an
    #: initial RTT of 333 ms (PTO 999 ms); the paper's Table 4 shows
    #: implementations choose much lower defaults.
    default_pto_ms: float = 999.0
    max_ack_delay_ms: float = 25.0
    granularity_ms: float = GRANULARITY_MS
    packet_threshold: int = PACKET_THRESHOLD
    time_threshold: float = TIME_THRESHOLD
    #: "standard" per RFC 9002 §5.3, or "aioquic" (see RttEstimator).
    rtt_variant: str = "standard"
    #: When False, ACK frames arriving in the Initial space do not
    #: produce RTT samples (picoquic quirk).
    use_initial_ack_rtt_sample: bool = True
    #: When True, the anti-deadlock PTO (nothing in flight, handshake
    #: incomplete) fires at ``last_ack_eliciting_sent + default_pto *
    #: 2^count`` instead of ``now + pto * 2^count`` (mvfst/picoquic).
    anti_deadlock_probe_from_sent_time: bool = False
    #: Probability that the first sample mis-initializes srtt
    #: (go-x-net quirk) and the value it is mis-initialized to.
    misinit_srtt_probability: float = 0.0
    misinit_srtt_ms: float = 90.0
    #: Loss-detection strategy (:data:`LOSS_DETECTORS` name):
    #: ``"rfc9002"`` combines the packet and time thresholds (§6.1),
    #: ``"packet"`` / ``"time"`` isolate one axis for the recovery lab.
    loss_detector: str = "rfc9002"


class LossDetector:
    """Strategy interface for the RFC 9002 §6.1 loss-classification seam.

    :meth:`classify` judges one outstanding packet already covered by
    ``largest_acked`` and returns ``(lost, loss_time_candidate_ms)``:
    either the packet is declared lost now, or an optional deadline at
    which the time threshold would declare it (``None`` when the
    strategy sets no loss timer and leaves the tail to the PTO).

    The time condition MUST be the exact float expression the loss
    timer fires on (``time_sent + loss_delay <= now + 1e-9``, mirroring
    :meth:`Recovery.detect_lost_on_timer`). Phrasing it as
    ``time_sent <= now - loss_delay`` is mathematically identical but
    rounds differently, and a candidate landing one ulp below ``now``
    then re-arms the timer at the same instant forever — a same-time
    livelock.
    """

    name = "base"

    def classify(
        self,
        *,
        packet_number: int,
        time_sent_ms: float,
        largest_acked: int,
        now_ms: float,
        loss_delay_ms: float,
        packet_threshold: int,
    ) -> Tuple[bool, Optional[float]]:
        raise NotImplementedError


class Rfc9002LossDetector(LossDetector):
    """Packet- **and** time-threshold detection — the RFC 9002 default."""

    name = "rfc9002"

    def classify(
        self,
        *,
        packet_number: int,
        time_sent_ms: float,
        largest_acked: int,
        now_ms: float,
        loss_delay_ms: float,
        packet_threshold: int,
    ) -> Tuple[bool, Optional[float]]:
        candidate = time_sent_ms + loss_delay_ms
        if (
            candidate <= now_ms + 1e-9
            or largest_acked - packet_number >= packet_threshold
        ):
            return True, None
        return False, candidate


class PacketThresholdLossDetector(LossDetector):
    """Reordering-threshold detection only: a packet is lost when
    ``packet_threshold`` later packets were acknowledged. No loss timer
    is ever armed — undetected tail losses wait for the PTO, which is
    exactly the degradation the recovery-lab sweeps measure."""

    name = "packet"

    def classify(
        self,
        *,
        packet_number: int,
        time_sent_ms: float,
        largest_acked: int,
        now_ms: float,
        loss_delay_ms: float,
        packet_threshold: int,
    ) -> Tuple[bool, Optional[float]]:
        if largest_acked - packet_number >= packet_threshold:
            return True, None
        return False, None


class TimeThresholdLossDetector(LossDetector):
    """Time-threshold detection only: a packet is lost once it has
    been outstanding for ``time_threshold × max(srtt, latest_rtt)``
    past an acknowledged successor; the packet-count shortcut is off,
    so isolated reordering never declares loss early."""

    name = "time"

    def classify(
        self,
        *,
        packet_number: int,
        time_sent_ms: float,
        largest_acked: int,
        now_ms: float,
        loss_delay_ms: float,
        packet_threshold: int,
    ) -> Tuple[bool, Optional[float]]:
        candidate = time_sent_ms + loss_delay_ms
        if candidate <= now_ms + 1e-9:
            return True, None
        return False, candidate


#: Strategy registry: config-facing name → detector class.
LOSS_DETECTORS = {
    Rfc9002LossDetector.name: Rfc9002LossDetector,
    PacketThresholdLossDetector.name: PacketThresholdLossDetector,
    TimeThresholdLossDetector.name: TimeThresholdLossDetector,
}


def make_loss_detector(name: str) -> LossDetector:
    """Instantiate a loss detector by registry name."""
    try:
        cls = LOSS_DETECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown loss detector {name!r}; known: {sorted(LOSS_DETECTORS)}"
        ) from None
    return cls()


class RttEstimator:
    """RTT estimation per RFC 9002 §5.

    The ``aioquic`` variant updates ``smoothed_rtt`` *before* computing
    the deviation used for ``rttvar`` (the paper notes "aioquic uses a
    different formula to calculate RTT variance", Appendix E); the
    standard variant uses the pre-update ``smoothed_rtt``.
    """

    def __init__(
        self,
        variant: str = "standard",
        rng: Optional[random.Random] = None,
        misinit_probability: float = 0.0,
        misinit_srtt_ms: float = 90.0,
    ):
        if variant not in ("standard", "aioquic"):
            raise ValueError(f"unknown RTT variant {variant!r}")
        self.variant = variant
        self._rng = rng if rng is not None else random.Random(0)
        self._misinit_probability = misinit_probability
        self._misinit_srtt_ms = misinit_srtt_ms
        self.latest_rtt: Optional[float] = None
        self.min_rtt: Optional[float] = None
        self.smoothed_rtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.samples = 0
        self.misinitialized = False
        #: Bumped on every accepted sample; lets PTO consumers memoize
        #: derived values until the estimate actually changes.
        self.version = 0

    @property
    def has_sample(self) -> bool:
        return self.samples > 0

    def update(self, sample_ms: float, ack_delay_ms: float = 0.0) -> None:
        """Feed one RTT sample (RFC 9002 §5.3).

        The first sample initializes ``srtt = sample`` and
        ``rttvar = sample/2`` and **ignores the acknowledgment delay**
        — this asymmetry is the protocol-level root of the instant ACK
        advantage.
        """
        if sample_ms <= 0:
            raise ValueError(f"RTT sample must be positive: {sample_ms}")
        self.latest_rtt = sample_ms
        self.samples += 1
        self.version += 1
        if self.samples == 1:
            if (
                self._misinit_probability > 0.0
                and self._rng.random() < self._misinit_probability
            ):
                # go-x-net quirk: e.g. "reported RTT 33 ms, but smoothed
                # RTT is initialized at 90 ms" (§4.1).
                self.misinitialized = True
                self.min_rtt = sample_ms
                self.smoothed_rtt = self._misinit_srtt_ms
                self.rttvar = self._misinit_srtt_ms / 2.0
                return
            self.min_rtt = sample_ms
            self.smoothed_rtt = sample_ms
            self.rttvar = sample_ms / 2.0
            return
        assert self.min_rtt is not None
        assert self.smoothed_rtt is not None and self.rttvar is not None
        self.min_rtt = min(self.min_rtt, sample_ms)
        adjusted = sample_ms
        if adjusted >= self.min_rtt + ack_delay_ms:
            adjusted -= ack_delay_ms
        if self.variant == "standard":
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.smoothed_rtt - adjusted)
            self.smoothed_rtt = 0.875 * self.smoothed_rtt + 0.125 * adjusted
        else:  # aioquic variant: srtt updated first
            self.smoothed_rtt = 0.875 * self.smoothed_rtt + 0.125 * adjusted
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.smoothed_rtt - adjusted)

    def pto_base_ms(
        self,
        default_pto_ms: float,
        granularity_ms: float = GRANULARITY_MS,
        include_max_ack_delay: bool = False,
        max_ack_delay_ms: float = 25.0,
    ) -> float:
        """PTO before backoff: ``srtt + max(4*rttvar, granularity)``
        plus the peer's ``max_ack_delay`` for the application space;
        the configured default when no sample exists."""
        if not self.has_sample:
            return default_pto_ms
        assert self.smoothed_rtt is not None and self.rttvar is not None
        pto = self.smoothed_rtt + max(4.0 * self.rttvar, granularity_ms)
        if include_max_ack_delay:
            pto += max_ack_delay_ms
        return pto


@dataclass(slots=True)
class SentPacket:
    """Bookkeeping for one sent packet (RFC 9002 A.1.1)."""

    packet_number: int
    time_sent_ms: float
    ack_eliciting: bool
    in_flight: bool
    size: int
    packet: Packet
    #: Whether this packet was a PTO probe (for diagnostics).
    is_probe: bool = False
    declared_lost: bool = False


@dataclass(slots=True)
class SpaceState:
    """Per-packet-number-space recovery state."""

    next_packet_number: int = 0
    sent: Dict[int, SentPacket] = field(default_factory=dict)
    largest_acked: Optional[int] = None
    loss_time_ms: Optional[float] = None
    time_of_last_ack_eliciting_ms: Optional[float] = None
    discarded: bool = False
    #: Live count of ack-eliciting packets still in flight (not acked,
    #: not declared lost) — consulted on every timer re-arm, so it is
    #: maintained incrementally instead of scanning ``sent``.
    ack_eliciting_in_flight_count: int = 0

    def ack_eliciting_in_flight(self) -> bool:
        return self.ack_eliciting_in_flight_count > 0


@dataclass(slots=True)
class AckResult:
    """Outcome of processing one ACK frame."""

    newly_acked: List[SentPacket]
    rtt_sample_ms: Optional[float]
    lost: List[SentPacket]


class Recovery:
    """Per-connection loss recovery across the three packet spaces."""

    def __init__(
        self,
        config: RecoveryConfig,
        rng: Optional[random.Random] = None,
        is_client: bool = True,
    ):
        self.config = config
        self.is_client = is_client
        self.loss_detector = make_loss_detector(config.loss_detector)
        self.estimator = RttEstimator(
            variant=config.rtt_variant,
            rng=rng,
            misinit_probability=config.misinit_srtt_probability,
            misinit_srtt_ms=config.misinit_srtt_ms,
        )
        # Indexed by Space (an IntEnum): list indexing is measurably
        # cheaper than enum-keyed dict hashing on the per-packet path.
        self.spaces: List[SpaceState] = [
            SpaceState(), SpaceState(), SpaceState(),
        ]
        #: Per-space memo of the backoff-free PTO, tagged with the
        #: estimator version it was computed at.
        self._pto_cache: List[Tuple[int, float]] = [(-1, 0.0)] * 3
        #: Version of the recovery state that the loss/PTO deadline
        #: depends on; bumped by every mutation. Timer re-arms between
        #: mutations then reuse the memoized deadline.
        self._state_version = 0
        self._deadline_cache: Optional[
            Tuple[int, Optional[Tuple[float, Space, str]]]
        ] = None
        self.pto_count = 0
        #: Anchor for the anti-deadlock PTO: the last time the PTO
        #: machinery was "reset" (ack-eliciting send, forward-progress
        #: ack, or key discard) — RFC 9002 §6.2.1.
        self.last_pto_reset_ms = 0.0
        #: Total PTO probes fired (diagnostics / "futile load" analysis).
        self.probes_sent = 0
        #: Retransmissions that the peer had already received
        #: (spurious); detected when a newly-acked packet was earlier
        #: declared lost and retransmitted.
        self.spurious_retransmissions = 0
        self._handshake_complete = False

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def next_packet_number(self, space: Space) -> int:
        state = self.spaces[space]
        pn = state.next_packet_number
        state.next_packet_number += 1
        return pn

    def on_packet_sent(
        self,
        packet: Packet,
        now_ms: float,
        size: int,
        in_flight: bool = True,
        is_probe: bool = False,
    ) -> SentPacket:
        state = self.spaces[packet.space]
        if state.discarded:
            raise RuntimeError(f"space {packet.space.name} already discarded")
        sp = SentPacket(
            packet_number=packet.packet_number,
            time_sent_ms=now_ms,
            ack_eliciting=packet.ack_eliciting,
            in_flight=in_flight,
            size=size,
            packet=packet,
            is_probe=is_probe,
        )
        state.sent[packet.packet_number] = sp
        if packet.ack_eliciting:
            if in_flight:
                state.ack_eliciting_in_flight_count += 1
            state.time_of_last_ack_eliciting_ms = now_ms
            self.last_pto_reset_ms = max(self.last_pto_reset_ms, now_ms)
        if is_probe:
            self.probes_sent += 1
        self._state_version += 1
        return sp

    # ------------------------------------------------------------------
    # receiving ACKs
    # ------------------------------------------------------------------

    def on_ack_received(
        self,
        space: Space,
        ack: AckFrame,
        now_ms: float,
    ) -> AckResult:
        """Process an ACK frame received in ``space`` (RFC 9002 A.7)."""
        state = self.spaces[space]
        if state.discarded:
            return AckResult(newly_acked=[], rtt_sample_ms=None, lost=[])
        newly_acked: List[SentPacket] = []
        sent = state.sent
        for low, high in ack.ranges:  # descending by high
            span = high - low + 1
            if span > len(sent):
                # Wide range over a small outstanding set (the common
                # steady-state shape: every ACK re-covers the whole
                # history): scan the sent map instead of the range.
                hits = sorted(
                    (pn for pn in sent if low <= pn <= high), reverse=True
                )
            else:
                hits = [pn for pn in range(high, low - 1, -1) if pn in sent]
            for pn in hits:
                sp = sent[pn]
                newly_acked.append(sp)
                if sp.declared_lost:
                    # The "lost" packet was delivered after all: the
                    # retransmission we triggered was spurious.
                    self.spurious_retransmissions += 1
                elif sp.ack_eliciting and sp.in_flight:
                    state.ack_eliciting_in_flight_count -= 1
                del sent[pn]
        rtt_sample: Optional[float] = None
        if newly_acked:
            largest_newly = max(sp.packet_number for sp in newly_acked)
            if state.largest_acked is None or largest_newly > state.largest_acked:
                state.largest_acked = largest_newly
                largest_sp = next(
                    sp for sp in newly_acked if sp.packet_number == largest_newly
                )
                take_sample = largest_sp.ack_eliciting
                if space is Space.INITIAL and not self.config.use_initial_ack_rtt_sample:
                    take_sample = False
                if take_sample:
                    rtt_sample = now_ms - largest_sp.time_sent_ms
                    if rtt_sample > 0:
                        # Ack delay adjustment happens inside update();
                        # the Initial space ignores the field (RFC 9002
                        # §5.3 / paper Appendix D).
                        delay = 0.0 if space is Space.INITIAL else ack.ack_delay_ms
                        self.estimator.update(rtt_sample, ack_delay_ms=delay)
            if any(sp.ack_eliciting for sp in newly_acked):
                # Reset backoff on forward progress (RFC 9002 §6.2.1;
                # clients keep backoff until address validation is
                # certain — simplified here as a plain reset).
                self.pto_count = 0
                self.last_pto_reset_ms = max(self.last_pto_reset_ms, now_ms)
        lost = self._detect_lost(space, now_ms)
        self._state_version += 1
        return AckResult(newly_acked=newly_acked, rtt_sample_ms=rtt_sample, lost=lost)

    # ------------------------------------------------------------------
    # loss detection
    # ------------------------------------------------------------------

    def _loss_delay_ms(self) -> float:
        est = self.estimator
        if not est.has_sample:
            return self.config.default_pto_ms
        assert est.smoothed_rtt is not None and est.latest_rtt is not None
        return max(
            self.config.time_threshold * max(est.smoothed_rtt, est.latest_rtt),
            self.config.granularity_ms,
        )

    def _detect_lost(self, space: Space, now_ms: float) -> List[SentPacket]:
        """Packet- and time-threshold loss detection (RFC 9002 §6.1)."""
        state = self.spaces[space]
        state.loss_time_ms = None
        if state.largest_acked is None:
            return []
        lost: List[SentPacket] = []
        loss_delay = self._loss_delay_ms()
        detector = self.loss_detector
        for pn in sorted(state.sent):
            sp = state.sent[pn]
            if pn > state.largest_acked:
                continue
            if sp.declared_lost:
                continue
            is_lost, candidate = detector.classify(
                packet_number=pn,
                time_sent_ms=sp.time_sent_ms,
                largest_acked=state.largest_acked,
                now_ms=now_ms,
                loss_delay_ms=loss_delay,
                packet_threshold=self.config.packet_threshold,
            )
            if is_lost:
                sp.declared_lost = True
                if sp.ack_eliciting and sp.in_flight:
                    state.ack_eliciting_in_flight_count -= 1
                sp.in_flight = False
                lost.append(sp)
            elif candidate is not None:
                if state.loss_time_ms is None or candidate < state.loss_time_ms:
                    state.loss_time_ms = candidate
        self._state_version += 1
        return lost

    def detect_lost_on_timer(self, now_ms: float) -> List[Tuple[Space, SentPacket]]:
        """Time-threshold loss triggered by the loss timer."""
        out: List[Tuple[Space, SentPacket]] = []
        for space, state in zip(_ALL_SPACES, self.spaces):
            if state.discarded or state.loss_time_ms is None:
                continue
            if state.loss_time_ms <= now_ms + 1e-9:
                for sp in self._detect_lost(space, now_ms):
                    out.append((space, sp))
        return out

    # ------------------------------------------------------------------
    # PTO computation (RFC 9002 A.8)
    # ------------------------------------------------------------------

    def set_handshake_complete(self) -> None:
        self._handshake_complete = True
        self._state_version += 1

    def pto_for_space(self, space: Space) -> float:
        """Backoff-free PTO applicable to one space.

        Memoized against the estimator version: the PTO is queried on
        every timer re-arm but only changes when a new RTT sample is
        accepted.
        """
        version, cached = self._pto_cache[space]
        if version == self.estimator.version:
            return cached
        value = self.estimator.pto_base_ms(
            default_pto_ms=self.config.default_pto_ms,
            granularity_ms=self.config.granularity_ms,
            include_max_ack_delay=(space is Space.APPLICATION),
            max_ack_delay_ms=self.config.max_ack_delay_ms,
        )
        self._pto_cache[space] = (self.estimator.version, value)
        return value

    def earliest_loss_time(self) -> Optional[Tuple[float, Space]]:
        best: Optional[Tuple[float, Space]] = None
        for space, state in zip(_ALL_SPACES, self.spaces):
            if state.discarded or state.loss_time_ms is None:
                continue
            if best is None or state.loss_time_ms < best[0]:
                best = (state.loss_time_ms, space)
        return best

    def pto_time_and_space(
        self, now_ms: float
    ) -> Optional[Tuple[float, Space, bool]]:
        """When and in which space the next PTO fires, or ``None``.

        The third element flags a **time-dependent** deadline (the
        anti-deadlock branch clamps against ``now_ms``); such results
        must not be memoized by callers."""
        backoff = 2 ** self.pto_count
        best: Optional[Tuple[float, Space]] = None
        any_in_flight = False
        for space in (Space.INITIAL, Space.HANDSHAKE, Space.APPLICATION):
            state = self.spaces[space]
            if state.discarded:
                continue
            if not state.ack_eliciting_in_flight():
                continue
            if space is Space.APPLICATION and not self._handshake_complete:
                # Skip app space until the handshake is confirmed
                # (RFC 9002 A.8); Initial/Handshake govern first.
                continue
            any_in_flight = True
            assert state.time_of_last_ack_eliciting_ms is not None
            when = state.time_of_last_ack_eliciting_ms + self.pto_for_space(space) * backoff
            if best is None or when < best[0]:
                best = (when, space)
        if best is not None:
            return (best[0], best[1], False)
        if not any_in_flight and self.is_client and not self._handshake_complete:
            # Anti-deadlock PTO (RFC 9002 §6.2.2.1): nothing in flight
            # but the handshake is incomplete — e.g. right after an
            # instant ACK removed the ClientHello from flight. This
            # branch depends on the query time (``max(when, now)``) and
            # must not be memoized by callers.
            space = (
                Space.HANDSHAKE
                if not self.spaces[Space.HANDSHAKE].discarded
                and self.spaces[Space.HANDSHAKE].next_packet_number > 0
                else Space.INITIAL
            )
            if self.spaces[space].discarded:
                return None
            if self.config.anti_deadlock_probe_from_sent_time:
                # mvfst/picoquic: the timer stays anchored at the last
                # ack-eliciting send using the *default* PTO — an
                # instant ACK does not provoke earlier probes.
                anchor = self._last_ack_eliciting_any()
                if anchor is None:
                    anchor = now_ms
                when = anchor + self.config.default_pto_ms * backoff
                return (max(when, now_ms), space, True)
            # Anchor at the last PTO reset, NOT the query time —
            # otherwise every timer re-arm would push the deadline
            # forward and the probe would never fire.
            when = self.last_pto_reset_ms + self.pto_for_space(space) * backoff
            return (max(when, now_ms), space, True)
        return None

    def _last_ack_eliciting_any(self) -> Optional[float]:
        times = [
            st.time_of_last_ack_eliciting_ms
            for st in self.spaces
            if st.time_of_last_ack_eliciting_ms is not None
        ]
        return max(times) if times else None

    def loss_detection_deadline(self, now_ms: float) -> Optional[Tuple[float, Space, str]]:
        """Next timer: ``(when, space, kind)`` with kind ``"loss"`` or
        ``"pto"``; ``None`` when no timer should be armed.

        Memoized against :attr:`_state_version`: timers re-arm far more
        often than the recovery state changes. The anti-deadlock PTO is
        the one ``now``-dependent branch and is never cached."""
        cached = self._deadline_cache
        if cached is not None and cached[0] == self._state_version:
            return cached[1]
        self._deadline_cache = None
        loss = self.earliest_loss_time()
        if loss is not None:
            result: Optional[Tuple[float, Space, str]] = (loss[0], loss[1], "loss")
            self._deadline_cache = (self._state_version, result)
            return result
        pto = self.pto_time_and_space(now_ms)
        if pto is None:
            self._deadline_cache = (self._state_version, None)
            return None
        result = (pto[0], pto[1], "pto")
        if not pto[2]:  # time-dependent deadlines are never cached
            self._deadline_cache = (self._state_version, result)
        return result

    def on_pto_fired(self) -> None:
        self.pto_count += 1
        self._state_version += 1

    # ------------------------------------------------------------------
    # key / space lifecycle
    # ------------------------------------------------------------------

    def discard_space(self, space: Space, now_ms: Optional[float] = None) -> None:
        """Discard keys for a space (RFC 9002 §6.4): drop its state and
        reset the PTO backoff."""
        state = self.spaces[space]
        state.discarded = True
        state.sent.clear()
        state.loss_time_ms = None
        state.time_of_last_ack_eliciting_ms = None
        state.ack_eliciting_in_flight_count = 0
        self.pto_count = 0
        if now_ms is not None:
            self.last_pto_reset_ms = max(self.last_pto_reset_ms, now_ms)
        self._state_version += 1

    def bytes_in_flight(self) -> int:
        return sum(
            sp.size
            for st in self.spaces
            if not st.discarded
            for sp in st.sent.values()
            if sp.in_flight and not sp.declared_lost
        )
