"""Congestion control (RFC 9002 §7): NewReno-style controller.

Handshake flights are far below the initial window, so congestion
control only shapes the bulk-transfer experiments (the 10 MB transfer
of Figure 11). A faithful-but-simple NewReno with slow start,
congestion avoidance, and a recovery period is sufficient for the
paper's purposes.
"""

from __future__ import annotations

from typing import Optional

#: RFC 9002 §7.2: initial window of 10 max datagrams.
INITIAL_WINDOW_PACKETS = 10
MAX_DATAGRAM = 1200
MINIMUM_WINDOW = 2 * MAX_DATAGRAM
LOSS_REDUCTION_FACTOR = 0.5


class NewRenoController:
    """Byte-counting NewReno congestion controller."""

    def __init__(self, max_datagram_size: int = MAX_DATAGRAM):
        self.max_datagram_size = max_datagram_size
        self.cwnd = INITIAL_WINDOW_PACKETS * max_datagram_size
        self.ssthresh: Optional[int] = None
        self.bytes_in_flight = 0
        self.recovery_start_time_ms: Optional[float] = None
        self.loss_events = 0

    def in_slow_start(self) -> bool:
        return self.ssthresh is None or self.cwnd < self.ssthresh

    def can_send(self, size: int) -> bool:
        return self.bytes_in_flight + size <= self.cwnd

    def available_window(self) -> int:
        return max(0, self.cwnd - self.bytes_in_flight)

    def on_packet_sent(self, size: int) -> None:
        self.bytes_in_flight += size

    def on_packet_acked(self, size: int, time_sent_ms: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if (
            self.recovery_start_time_ms is not None
            and time_sent_ms <= self.recovery_start_time_ms
        ):
            return  # recovery period: no growth for pre-recovery packets
        if self.in_slow_start():
            self.cwnd += size
        else:
            self.cwnd += self.max_datagram_size * size // max(self.cwnd, 1)

    def on_packets_lost(self, total_size: int, latest_sent_ms: float, now_ms: float) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - total_size)
        if (
            self.recovery_start_time_ms is not None
            and latest_sent_ms <= self.recovery_start_time_ms
        ):
            return  # already reacted to this loss episode
        self.loss_events += 1
        self.recovery_start_time_ms = now_ms
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), MINIMUM_WINDOW)
        self.ssthresh = self.cwnd

    def on_packet_discarded(self, size: int) -> None:
        """Remove a packet from flight without a congestion reaction
        (e.g. when keys are discarded)."""
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
