"""Congestion control (RFC 9002 §7): pluggable controller strategies.

Handshake flights are far below the initial window, so congestion
control only shapes the bulk-transfer experiments (the 10 MB transfer
of Figure 11) and the recovery-lab sweeps. The shared
:class:`CongestionController` base owns the window accounting every
strategy needs (bytes in flight, recovery-episode gating); concrete
strategies supply the growth and reduction rules:

* :class:`NewRenoController` — byte-counting NewReno, the default and
  the behavior every paper figure was validated against;
* :class:`CubicController` — a CUBIC-style variant (RFC 9438 window
  curve with a Reno-friendly floor), available to the recovery lab via
  :mod:`repro.quic.profiles`.

Strategies are looked up by name through :data:`CC_CONTROLLERS` /
:func:`make_controller` so a :class:`~repro.quic.profiles
.RecoveryProfile` can carry the choice as a plain hashable string.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

#: RFC 9002 §7.2: initial window of 10 max datagrams.
INITIAL_WINDOW_PACKETS = 10
MAX_DATAGRAM = 1200
MINIMUM_WINDOW = 2 * MAX_DATAGRAM
LOSS_REDUCTION_FACTOR = 0.5

#: CUBIC aggressiveness constant (RFC 9438 §4.1), in segments/s³.
CUBIC_C = 0.4
#: CUBIC multiplicative-decrease factor (RFC 9438 §4.6).
CUBIC_BETA = 0.7


class CongestionController:
    """Window accounting shared by every congestion-control strategy.

    Subclasses implement :meth:`on_packet_acked` /
    :meth:`on_packets_lost`; everything else (sending, discard, the
    recovery-episode gate) is strategy-independent bookkeeping.
    """

    name = "base"

    def __init__(self, max_datagram_size: int = MAX_DATAGRAM):
        self.max_datagram_size = max_datagram_size
        self.cwnd = INITIAL_WINDOW_PACKETS * max_datagram_size
        self.ssthresh: Optional[int] = None
        self.bytes_in_flight = 0
        self.recovery_start_time_ms: Optional[float] = None
        self.loss_events = 0

    def in_slow_start(self) -> bool:
        return self.ssthresh is None or self.cwnd < self.ssthresh

    def can_send(self, size: int) -> bool:
        return self.bytes_in_flight + size <= self.cwnd

    def available_window(self) -> int:
        return max(0, self.cwnd - self.bytes_in_flight)

    def on_packet_sent(self, size: int) -> None:
        self.bytes_in_flight += size

    def on_packet_discarded(self, size: int) -> None:
        """Remove a packet from flight without a congestion reaction
        (e.g. when keys are discarded)."""
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)

    def _in_recovery(self, sent_ms: float) -> bool:
        """Whether a packet sent at ``sent_ms`` belongs to the current
        recovery episode (RFC 9002 §7.3.1)."""
        return (
            self.recovery_start_time_ms is not None
            and sent_ms <= self.recovery_start_time_ms
        )

    def on_packet_acked(
        self, size: int, time_sent_ms: float, now_ms: Optional[float] = None
    ) -> None:
        raise NotImplementedError

    def on_packets_lost(
        self, total_size: int, latest_sent_ms: float, now_ms: float
    ) -> None:
        raise NotImplementedError


class NewRenoController(CongestionController):
    """Byte-counting NewReno congestion controller."""

    name = "newreno"

    def on_packet_acked(
        self, size: int, time_sent_ms: float, now_ms: Optional[float] = None
    ) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if self._in_recovery(time_sent_ms):
            return  # recovery period: no growth for pre-recovery packets
        if self.in_slow_start():
            self.cwnd += size
        else:
            self.cwnd += self.max_datagram_size * size // max(self.cwnd, 1)

    def on_packets_lost(
        self, total_size: int, latest_sent_ms: float, now_ms: float
    ) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - total_size)
        if self._in_recovery(latest_sent_ms):
            return  # already reacted to this loss episode
        self.loss_events += 1
        self.recovery_start_time_ms = now_ms
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), MINIMUM_WINDOW)
        self.ssthresh = self.cwnd


class CubicController(CongestionController):
    """CUBIC-style congestion controller (RFC 9438, simplified).

    Congestion avoidance follows the cubic window curve
    ``W(t) = C·(t − K)³ + W_max`` (in segments, ``t`` in seconds since
    the current epoch started), with a Reno-style additive floor so the
    window never grows slower than NewReno would. Loss applies the
    ``β = 0.7`` multiplicative decrease and starts a new epoch. Fully
    deterministic — no randomness beyond what the simulator feeds it —
    so recovery-lab sweeps stay reproducible per seed.
    """

    name = "cubic"

    def __init__(self, max_datagram_size: int = MAX_DATAGRAM):
        super().__init__(max_datagram_size)
        #: Window (in segments) at the last multiplicative decrease.
        self._w_max_segments = 0.0
        #: Time offset (seconds) at which the cubic curve re-reaches
        #: ``W_max``: ``K = ((W_max·(1−β))/C)^(1/3)``.
        self._k_s = 0.0
        self._epoch_start_ms: Optional[float] = None

    def on_packet_acked(
        self, size: int, time_sent_ms: float, now_ms: Optional[float] = None
    ) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - size)
        if self._in_recovery(time_sent_ms):
            return
        if self.in_slow_start():
            self.cwnd += size
            return
        # The endpoint passes the ack-processing time; standalone use
        # (unit tests) may omit it, in which case the send time stands
        # in — still deterministic, merely a flatter curve.
        when_ms = now_ms if now_ms is not None else time_sent_ms
        if self._epoch_start_ms is None:
            self._epoch_start_ms = when_ms
        t_s = max(0.0, (when_ms - self._epoch_start_ms) / 1000.0)
        w_cubic_segments = CUBIC_C * (t_s - self._k_s) ** 3 + self._w_max_segments
        target = int(w_cubic_segments * self.max_datagram_size)
        reno_step = self.max_datagram_size * size // max(self.cwnd, 1)
        if target > self.cwnd:
            # Concave/convex region: close a per-ack fraction of the
            # gap to the cubic curve, never slower than Reno.
            cubic_step = (target - self.cwnd) * size // max(self.cwnd, 1)
            self.cwnd += max(reno_step, cubic_step)
        else:
            # TCP-friendly region below the curve.
            self.cwnd += reno_step

    def on_packets_lost(
        self, total_size: int, latest_sent_ms: float, now_ms: float
    ) -> None:
        self.bytes_in_flight = max(0, self.bytes_in_flight - total_size)
        if self._in_recovery(latest_sent_ms):
            return
        self.loss_events += 1
        self.recovery_start_time_ms = now_ms
        self._w_max_segments = self.cwnd / self.max_datagram_size
        self._k_s = (self._w_max_segments * (1.0 - CUBIC_BETA) / CUBIC_C) ** (
            1.0 / 3.0
        )
        self._epoch_start_ms = None
        self.cwnd = max(int(self.cwnd * CUBIC_BETA), MINIMUM_WINDOW)
        self.ssthresh = self.cwnd


#: Strategy registry: profile-facing name → controller class.
CC_CONTROLLERS: Dict[str, Type[CongestionController]] = {
    NewRenoController.name: NewRenoController,
    CubicController.name: CubicController,
}


def make_controller(
    name: str, max_datagram_size: int = MAX_DATAGRAM
) -> CongestionController:
    """Instantiate a congestion controller by registry name."""
    try:
        cls = CC_CONTROLLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; "
            f"known: {sorted(CC_CONTROLLERS)}"
        ) from None
    return cls(max_datagram_size)
