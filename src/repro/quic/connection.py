"""Shared QUIC endpoint machinery (client and server bases).

Implements everything RFC 9000/9002 require of both sides: packet
reception with key-availability buffering, ACK generation policy,
ACK processing (RTT samples, congestion control, loss detection),
PTO probing, CRYPTO/STREAM retransmission, and key discard — driven
by a deterministic event loop and parameterized by an
:class:`~repro.impls.profile.ImplProfile`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.impls.profile import ImplProfile
from repro.qlog.events import EventCategory, MetricsUpdated, PacketEvent
from repro.qlog.writer import QlogWriter
from repro.quic.cc import make_controller
from repro.quic.cid import CidRegistry
from repro.quic.coalescing import Datagram, coalesce, pad_initial
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    PingFrame,
    RetireConnectionIdFrame,
    StreamFrame,
)
from repro.quic.packet import INITIAL_MIN_DATAGRAM, Packet, PacketType, Space
from repro.quic.profiles import DEFAULT_PROFILE, RecoveryProfile
from repro.quic.recovery import Recovery, RecoveryConfig, SentPacket
from repro.quic.streams import StreamSet
from repro.quic.tls import CryptoReceiveBuffer, CryptoSendBuffer
from repro.sim.draws import BehaviorDraws, RngDraws
from repro.sim.engine import EventLoop, Timer

_SPACE_TO_TYPE = {
    Space.INITIAL: PacketType.INITIAL,
    Space.HANDSHAKE: PacketType.HANDSHAKE,
    Space.APPLICATION: PacketType.ONE_RTT,
}

#: Abort the connection after this many consecutive PTOs (safety net;
#: real stacks use an idle timeout).
MAX_PTO_COUNT = 8

#: Largest CRYPTO/STREAM payload placed in one packet so a packet fits
#: a 1200-byte datagram with headers.
MAX_FRAME_PAYLOAD = 1100


@dataclass(slots=True)
class ConnectionStats:
    """Timing observables of one connection, all in ms of simulated
    time from connection start."""

    start_ms: float = 0.0
    client_hello_sent_ms: Optional[float] = None
    #: Arrival of the first ACK frame from the peer (the wild prober's
    #: IACK-detection signal) and whether it was coalesced with the
    #: ServerHello in the same datagram.
    first_ack_received_ms: Optional[float] = None
    first_ack_coalesced_with_sh: Optional[bool] = None
    server_hello_received_ms: Optional[float] = None
    handshake_complete_ms: Optional[float] = None
    handshake_confirmed_ms: Optional[float] = None
    #: Time to first byte: first STREAM payload byte received (for
    #: HTTP/3 this is the server's control-stream SETTINGS).
    ttfb_ms: Optional[float] = None
    #: First payload byte on the request/response stream (stream 0) —
    #: the "first payload byte after the loss event" of Appendix F.
    response_ttfb_ms: Optional[float] = None
    response_complete_ms: Optional[float] = None
    first_rtt_sample_ms: Optional[float] = None
    first_pto_ms: Optional[float] = None
    aborted: Optional[str] = None
    probes_sent: int = 0
    spurious_retransmissions: int = 0
    amplification_blocked_events: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    invalid_drops: int = 0

    def relative(self, value: Optional[float]) -> Optional[float]:
        if value is None:
            return None
        return value - self.start_ms

    @property
    def ttfb_relative_ms(self) -> Optional[float]:
        return self.relative(self.ttfb_ms)

    @property
    def response_ttfb_relative_ms(self) -> Optional[float]:
        return self.relative(self.response_ttfb_ms)

    @property
    def completed(self) -> bool:
        return self.response_complete_ms is not None and self.aborted is None


class PnRangeTracker:
    """Incrementally compressed record of received packet numbers.

    Packets overwhelmingly arrive in order, so extending the newest
    range is the O(1) fast path; building an ACK frame reads the
    ranges straight off instead of re-sorting the full receive history
    on every ACK sent (the aioquic ``RangeSet`` idiom).
    """

    __slots__ = ("_ranges",)

    def __init__(self) -> None:
        #: Inclusive ``[low, high]`` ranges sorted ascending by low.
        self._ranges: List[List[int]] = []

    def add(self, pn: int) -> None:
        ranges = self._ranges
        if ranges:
            last = ranges[-1]
            if pn == last[1] + 1:  # in-order arrival
                last[1] = pn
                return
            if last[0] <= pn <= last[1]:  # duplicate of newest range
                return
        else:
            ranges.append([pn, pn])
            return
        # Reordered arrival: find the insertion point (rare path).
        idx = bisect.bisect_right(ranges, pn, key=lambda r: r[0])
        if idx > 0 and ranges[idx - 1][1] >= pn - 1:
            prev = ranges[idx - 1]
            if pn <= prev[1]:
                return  # duplicate
            prev[1] = pn
            idx -= 1
        else:
            ranges.insert(idx, [pn, pn])
        # Merge forward if the next range now touches.
        while idx + 1 < len(ranges) and ranges[idx + 1][0] <= ranges[idx][1] + 1:
            ranges[idx][1] = max(ranges[idx][1], ranges[idx + 1][1])
            del ranges[idx + 1]

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def ranges_descending(self) -> Tuple[Tuple[int, int], ...]:
        """ACK-frame shape: ``(low, high)`` sorted descending by high."""
        return tuple((low, high) for low, high in reversed(self._ranges))


@dataclass(slots=True)
class _AckSpaceState:
    received_pns: PnRangeTracker = field(default_factory=PnRangeTracker)
    needs_ack: bool = False
    eliciting_since_ack: int = 0
    #: Arrival time of the oldest unacknowledged ack-eliciting packet
    #: (to report ack_delay honestly).
    oldest_unacked_ms: Optional[float] = None



class Endpoint:
    """Base class for :class:`ClientConnection` / :class:`ServerConnection`."""

    is_client: bool = True

    def __init__(
        self,
        loop: EventLoop,
        profile: ImplProfile,
        rng: Optional[random.Random] = None,
        qlog: Optional[QlogWriter] = None,
        name: str = "endpoint",
        draws: Optional[BehaviorDraws] = None,
        recovery_profile: Optional[RecoveryProfile] = None,
    ):
        self.loop = loop
        self.profile = profile
        #: The recovery-lab strategy bundle (CC / loss detection / ack
        #: policy); the default reproduces the pre-lab stack exactly.
        self.recovery_profile = (
            recovery_profile if recovery_profile is not None else DEFAULT_PROFILE
        )
        self.rng = rng if rng is not None else random.Random(0)
        #: Behavior randomness. Without an explicit ``draws`` the legacy
        #: shared-stream semantics apply (draws interleave on ``rng``).
        self.draws = draws if draws is not None else RngDraws(self.rng)
        self.name = name
        self.qlog = qlog if qlog is not None else QlogWriter(
            name, profile.exposure_policy(), self.rng
        )
        #: Hoisted qlog retention flag — consulted per packet on both
        #: the send and receive paths.
        self._qlog_record = self.qlog.record_events
        self.recovery = Recovery(
            RecoveryConfig(
                default_pto_ms=profile.default_pto_ms,
                max_ack_delay_ms=profile.max_ack_delay_ms,
                rtt_variant=profile.rtt_variant,
                use_initial_ack_rtt_sample=profile.use_initial_ack_rtt_sample,
                anti_deadlock_probe_from_sent_time=(
                    profile.anti_deadlock_probe_from_sent_time
                ),
                misinit_srtt_probability=profile.misinit_srtt_probability,
                misinit_srtt_ms=profile.misinit_srtt_ms,
                loss_detector=self.recovery_profile.loss_detector,
            ),
            rng=self.draws.misinit_rng(),
            is_client=self.is_client,
        )
        self.cc = make_controller(self.recovery_profile.cc)
        self._ack_policy = self.recovery_profile.make_ack_policy()
        self.streams = StreamSet()
        self.cids = CidRegistry()
        self.crypto_send: Dict[Space, CryptoSendBuffer] = {
            Space.INITIAL: CryptoSendBuffer(),
            Space.HANDSHAKE: CryptoSendBuffer(),
        }
        self.crypto_recv: Dict[Space, CryptoReceiveBuffer] = {
            Space.INITIAL: CryptoReceiveBuffer(),
            Space.HANDSHAKE: CryptoReceiveBuffer(),
        }
        #: Expected total CRYPTO stream length per space, learned from
        #: frame metadata (stands in for TLS message parsing).
        self.crypto_expected: Dict[Space, Optional[int]] = {
            Space.INITIAL: None,
            Space.HANDSHAKE: None,
        }
        self._ack_state: Dict[Space, _AckSpaceState] = {
            space: _AckSpaceState() for space in Space
        }
        self.stats = ConnectionStats(start_ms=loop.now)
        self.transmit: Optional[Callable[[Datagram, int], None]] = None
        self.closed = False
        self._loss_timer: Optional[Timer] = None
        self._ack_timer: Optional[Timer] = None
        self._busy_until_ms = 0.0
        #: Datagrams delivered but not yet processed (burst tracking:
        #: standalone acks are deferred until the burst is drained, as
        #: real stacks ack once per receive batch).
        self._datagrams_queued = 0
        #: The coalesced-crypto processing penalty models TLS key
        #: derivation and signature verification — paid once.
        self._crypto_penalty_paid = False
        self._pending_packets: List[Packet] = []
        #: While a receive pass (or timer callback that ends with an
        #: explicit re-arm) is running, sends skip the per-call loss
        #: timer re-arm — the pass re-arms once at its end.
        self._suspend_rearm = False
        self._has_handshake_keys = not self.is_client
        self._has_app_keys = not self.is_client
        self.handshake_complete = False
        self.handshake_confirmed = False
        self._ping_ack_drops_left = 1
        #: pn -> True for PING probe packets we sent in the Initial
        #: space (for the quiche drop quirk).
        self._initial_ping_pns: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_transport(self, transmit: Callable[[Datagram, int], None]) -> None:
        """Provide the function that puts a datagram on the wire."""
        self.transmit = transmit

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def on_datagram(self, dgram: Datagram) -> None:
        """Network delivery callback: queue the datagram behind the
        endpoint's (simulated) processing."""
        if self.closed:
            return
        self.stats.datagrams_received += 1
        self._on_datagram_arrival(dgram)
        delay = self._processing_delay(dgram)
        start = max(self.loop.now, self._busy_until_ms) + delay
        self._busy_until_ms = start
        self._datagrams_queued += 1
        self.loop.call_at(start, self._process_datagram, dgram)

    def _on_datagram_arrival(self, dgram: Datagram) -> None:
        """Hook at wire-arrival time (before processing delay); the
        server credits its amplification budget here."""

    def _processing_delay(self, dgram: Datagram) -> float:
        """Client stacks take measurably longer to process a datagram
        that coalesces an ACK with TLS crypto than a bare ACK (§4.1
        "QUIC stack delays") — the physical origin of the inflated
        first RTT sample under WFC."""
        if (
            self.is_client
            and dgram.contains_crypto()
            and not self._crypto_penalty_paid
        ):
            self._crypto_penalty_paid = True
            jitter = self.draws.penalty_jitter(self.profile.penalty_jitter_ms)
            return max(0.01, self.profile.coalesced_processing_penalty_ms + jitter)
        return self.profile.base_processing_ms

    def _process_datagram(self, dgram: Datagram) -> None:
        self._datagrams_queued = max(0, self._datagrams_queued - 1)
        if self.closed:
            return
        if self._should_drop_invalid(dgram):
            self.stats.invalid_drops += 1
            return
        self._suspend_rearm = True
        try:
            for packet in dgram.packets:
                self._process_packet(packet, dgram)
            self._drain_pending()
            self.after_datagram(dgram)
            self._maybe_send_acks()
        finally:
            self._suspend_rearm = False
        self._rearm_loss_timer()

    def _should_drop_invalid(self, dgram: Datagram) -> bool:
        """quiche quirk (§4.1): replies to PING frames are dropped as
        invalid — together with any packets coalesced with them."""
        if not self.profile.drops_ping_ack_coalesced:
            return False
        for packet in dgram.packets:
            if packet.packet_type is not PacketType.INITIAL:
                continue
            for ack in packet.ack_frames():
                if not any(ack.acks(pn) for pn in self._initial_ping_pns):
                    continue
                if len(dgram.packets) > 1 or packet.crypto_frames():
                    # The PING reply is coalesced with real content;
                    # dropping it once forces a server retransmission
                    # ("requires retransmission of the dropped
                    # information", §4.1).
                    if self._ping_ack_drops_left <= 0:
                        return False
                    self._ping_ack_drops_left -= 1
                return True
        return False

    def _keys_available(self, packet: Packet) -> bool:
        if packet.packet_type is PacketType.HANDSHAKE:
            return self._has_handshake_keys
        if packet.packet_type is PacketType.ONE_RTT:
            return self._has_app_keys and self._can_process_app()
        return True

    def _can_process_app(self) -> bool:
        """Servers defer 1-RTT processing until the handshake is
        complete (client Finished verified)."""
        return self.is_client or self.handshake_complete

    def _drain_pending(self) -> None:
        if not self._pending_packets:
            return
        still_pending: List[Packet] = []
        for packet in self._pending_packets:
            if self._keys_available(packet):
                self._process_packet(packet, None, buffered=True)
            else:
                still_pending.append(packet)
        self._pending_packets = still_pending

    def _process_packet(
        self,
        packet: Packet,
        dgram: Optional[Datagram],
        buffered: bool = False,
    ) -> None:
        space = packet.space
        if self.recovery.spaces[space].discarded:
            return
        if not self._keys_available(packet):
            self._pending_packets.append(packet)
            return
        ack_state = self._ack_state[space]
        ack_state.received_pns.add(packet.packet_number)
        if packet.ack_eliciting:
            ack_state.needs_ack = True
            ack_state.eliciting_since_ack += 1
            if ack_state.oldest_unacked_ms is None:
                ack_state.oldest_unacked_ms = self.loop.now
        newly_acked: List[int] = []
        for frame in packet.frames:
            if isinstance(frame, AckFrame):
                acked = self._handle_ack(space, frame)
                newly_acked.extend(acked)
            elif isinstance(frame, CryptoFrame):
                self._handle_crypto(space, frame, dgram)
            elif isinstance(frame, StreamFrame):
                self._handle_stream(frame)
            elif isinstance(frame, HandshakeDoneFrame):
                self.on_handshake_done()
            elif isinstance(frame, NewConnectionIdFrame):
                self._handle_new_cid(frame)
            elif isinstance(frame, RetireConnectionIdFrame):
                pass  # peer retired one of our CIDs; nothing to do
            elif isinstance(frame, ConnectionCloseFrame):
                self.abort(f"peer closed: {frame.reason}")
                return
        self._record_first_ack(packet, dgram)
        if not self._qlog_record:
            return
        extra_data = {}
        acks = packet.ack_frames()
        if acks:
            extra_data["first_ack_delay_ms"] = acks[0].ack_delay_ms
        self.qlog.log_packet(
            PacketEvent(
                time_ms=self.loop.now,
                category=EventCategory.TRANSPORT,
                name="packet_received",
                data=extra_data,
                packet_type=packet.packet_type.value,
                packet_number=packet.packet_number,
                space=space.name.lower(),
                size=packet.wire_size(),
                ack_eliciting=packet.ack_eliciting,
                frames=tuple(f.describe() for f in packet.frames),
                newly_acked=tuple(newly_acked),
            )
        )

    def _record_first_ack(self, packet: Packet, dgram: Optional[Datagram]) -> None:
        if self.stats.first_ack_received_ms is not None:
            return
        if not packet.ack_frames():
            return
        self.stats.first_ack_received_ms = self.loop.now
        coalesced = False
        if dgram is not None:
            coalesced = dgram.contains_crypto()
        self.stats.first_ack_coalesced_with_sh = coalesced

    def _handle_new_cid(self, frame: NewConnectionIdFrame) -> None:
        self.cids.register(frame.sequence, frame.connection_id)
        for seq in range(frame.retire_prior_to):
            fresh = self.cids.retire(seq)
            if not fresh and self.profile.aborts_on_duplicate_cid_retirement:
                if self._dup_cid_abort_applies():
                    self.abort("duplicate connection ID retirement")
                    return

    def _dup_cid_abort_applies(self) -> bool:
        """Subclasses narrow the quiche abort (observed for HTTP/1.1)."""
        return True

    # -- ACK processing -------------------------------------------------

    def _handle_ack(self, space: Space, ack: AckFrame) -> List[int]:
        result = self.recovery.on_ack_received(space, ack, self.loop.now)
        for sp in result.newly_acked:
            if sp.in_flight:
                self.cc.on_packet_acked(sp.size, sp.time_sent_ms, now_ms=self.loop.now)
            self._mark_frames_acked(space, sp)
        if result.rtt_sample_ms is not None:
            if self.stats.first_rtt_sample_ms is None:
                self.stats.first_rtt_sample_ms = result.rtt_sample_ms
                self.stats.first_pto_ms = self.recovery.pto_for_space(space)
            est = self.recovery.estimator
            self.qlog.log_metrics(
                MetricsUpdated(
                    time_ms=self.loop.now,
                    category=EventCategory.RECOVERY,
                    name="metrics_updated",
                    smoothed_rtt_ms=est.smoothed_rtt,
                    rtt_variance_ms=est.rttvar,
                    latest_rtt_ms=est.latest_rtt,
                    min_rtt_ms=est.min_rtt,
                    pto_count=self.recovery.pto_count,
                )
            )
        if result.lost:
            self._on_packets_lost(space, result.lost)
        return [sp.packet_number for sp in result.newly_acked]

    def _mark_frames_acked(self, space: Space, sp: SentPacket) -> None:
        for frame in sp.packet.frames:
            if isinstance(frame, CryptoFrame) and space in self.crypto_send:
                self.crypto_send[space].mark_acked(frame.offset, frame.end)
            elif isinstance(frame, StreamFrame):
                send_stream = self.streams.send.get(frame.stream_id)
                if send_stream is not None:
                    send_stream.mark_acked(frame.offset, frame.length, frame.fin)

    def _on_packets_lost(self, space: Space, lost: List[SentPacket]) -> None:
        total = sum(sp.size for sp in lost if sp.in_flight or sp.declared_lost)
        latest = max(sp.time_sent_ms for sp in lost)
        self.cc.on_packets_lost(total, latest, self.loop.now)
        self._retransmit_lost(space, lost)

    def _retransmit_lost(self, space: Space, lost: List[SentPacket]) -> None:
        """Re-send the retransmittable content of lost packets."""
        crypto_ranges: List[Tuple[int, int]] = []
        stream_chunks: List[StreamFrame] = []
        special: List[Frame] = []
        for sp in lost:
            for frame in sp.packet.frames:
                if isinstance(frame, CryptoFrame):
                    crypto_ranges.append((frame.offset, frame.end))
                elif isinstance(frame, StreamFrame):
                    stream_chunks.append(frame)
                elif isinstance(frame, (HandshakeDoneFrame, NewConnectionIdFrame)):
                    special.append(frame)
        packets: List[Packet] = []
        if crypto_ranges:
            packets.extend(self._crypto_packets(space, crypto_ranges))
        if stream_chunks or special:
            frames: List[Frame] = list(special)
            for chunk in stream_chunks:
                frames.append(
                    StreamFrame(
                        stream_id=chunk.stream_id,
                        offset=chunk.offset,
                        length=chunk.length,
                        fin=chunk.fin,
                        label=chunk.label,
                    )
                )
            packets.append(self.build_packet(Space.APPLICATION, tuple(frames)))
        if packets:
            self.send_packets(packets)

    # -- CRYPTO / STREAM handling ----------------------------------------

    def _handle_crypto(
        self, space: Space, frame: CryptoFrame, dgram: Optional[Datagram]
    ) -> None:
        if space not in self.crypto_recv:
            return
        if frame.stream_total:
            self.crypto_expected[space] = frame.stream_total
        self.crypto_recv[space].receive(frame.offset, frame.length)
        self.on_crypto_progress(space)

    def _handle_stream(self, frame: StreamFrame) -> None:
        stream = self.streams.get_recv(frame.stream_id)
        stream.receive(frame.offset, frame.length, frame.fin, self.loop.now)
        if frame.length > 0 and self.stats.ttfb_ms is None:
            self.stats.ttfb_ms = self.loop.now
        if (
            frame.length > 0
            and frame.stream_id == 0
            and self.stats.response_ttfb_ms is None
        ):
            self.stats.response_ttfb_ms = self.loop.now
        self.on_stream_data(frame)

    # ------------------------------------------------------------------
    # hooks implemented by client/server
    # ------------------------------------------------------------------

    def on_crypto_progress(self, space: Space) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_stream_data(self, frame: StreamFrame) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_handshake_done(self) -> None:
        """HANDSHAKE_DONE processing (client overrides)."""

    def after_datagram(self, dgram: Datagram) -> None:
        """Called after all packets of a datagram were processed."""

    # ------------------------------------------------------------------
    # packet construction and sending
    # ------------------------------------------------------------------

    def build_packet(
        self,
        space: Space,
        frames: Tuple[Frame, ...],
        include_ack: bool = True,
        ack_delay_ms: Optional[float] = None,
    ) -> Packet:
        """Build a packet, prepending an ACK for the space when one is
        owed (bundling acks with outgoing data, as stacks do)."""
        all_frames: Tuple[Frame, ...] = frames
        ack_state = self._ack_state[space]
        if include_ack and ack_state.needs_ack and ack_state.received_pns:
            delay = ack_delay_ms
            if delay is None:
                delay = self._ack_delay_for(space)
            ack = AckFrame(
                ranges=ack_state.received_pns.ranges_descending(),
                ack_delay_ms=delay,
            )
            all_frames = (ack,) + all_frames
            ack_state.needs_ack = False
            ack_state.eliciting_since_ack = 0
            ack_state.oldest_unacked_ms = None
        pn = self.recovery.next_packet_number(space)
        return Packet(
            packet_type=_SPACE_TO_TYPE[space],
            packet_number=pn,
            frames=all_frames,
        )

    def _ack_delay_for(self, space: Space) -> float:
        if space is Space.INITIAL:
            return self.profile.initial_ack_delay_ms if not self.is_client else 0.0
        if space is Space.HANDSHAKE:
            if not self.is_client and self.profile.handshake_ack_delay_ms is not None:
                return self.profile.handshake_ack_delay_ms
            return 0.0
        oldest = self._ack_state[space].oldest_unacked_ms
        if oldest is None:
            return 0.0
        return max(0.0, self.loop.now - oldest)

    def _crypto_packets(
        self, space: Space, ranges: List[Tuple[int, int]]
    ) -> List[Packet]:
        """CRYPTO packets re-sending the given byte ranges."""
        buf = self.crypto_send.get(space)
        if buf is None:
            return []
        packets: List[Packet] = []
        for start, end in ranges:
            cursor = start
            while cursor < end:
                length = min(MAX_FRAME_PAYLOAD, end - cursor)
                frame = CryptoFrame(
                    offset=cursor,
                    length=length,
                    label=buf.label_for(cursor, cursor + length),
                    stream_total=buf.length,
                )
                packets.append(self.build_packet(space, (frame,)))
                cursor += length
        return packets

    def send_packets(
        self,
        packets: Sequence[Packet],
        is_probe: bool = False,
        group_into_datagrams: Optional[List[List[Packet]]] = None,
    ) -> None:
        """Coalesce packets into datagrams and transmit them.

        ``group_into_datagrams`` overrides automatic coalescing with an
        explicit grouping (used for the profile-specific second client
        flight split).
        """
        if not packets and not group_into_datagrams:
            return
        if group_into_datagrams is not None:
            groups = group_into_datagrams
        else:
            groups = [list(d.packets) for d in coalesce(packets, sender=self.name)]
        for group in groups:
            if self.is_client and any(
                p.packet_type is PacketType.INITIAL for p in group
            ):
                group = pad_initial(group, INITIAL_MIN_DATAGRAM)
            elif not self.is_client and self._pad_server_datagram(group):
                group = pad_initial(group, INITIAL_MIN_DATAGRAM)
            dgram = Datagram(packets=tuple(group), sender=self.name)
            self._send_datagram(dgram, is_probe=is_probe)
        if not self._suspend_rearm:
            self._rearm_loss_timer()

    def _pad_server_datagram(self, group: List[Packet]) -> bool:
        """Server-side padding policy (overridden for padded IACK)."""
        return False

    def _send_datagram(self, dgram: Datagram, is_probe: bool = False) -> None:
        if self.transmit is None:
            raise RuntimeError(f"{self.name}: transport not attached")
        size = dgram.size
        if not self._may_send_now(size, dgram, is_probe):
            return
        for packet in dgram.packets:
            self.recovery.on_packet_sent(
                packet, self.loop.now, packet.wire_size(), in_flight=True,
                is_probe=is_probe,
            )
            self.cc.on_packet_sent(packet.wire_size())
            if is_probe and packet.packet_type is PacketType.INITIAL and any(
                isinstance(f, PingFrame) for f in packet.frames
            ):
                self._initial_ping_pns.setdefault(packet.packet_number, False)
            if self._qlog_record:
                self.qlog.log_packet(
                    PacketEvent(
                        time_ms=self.loop.now,
                        category=EventCategory.TRANSPORT,
                        name="packet_sent",
                        packet_type=packet.packet_type.value,
                        packet_number=packet.packet_number,
                        space=packet.space.name.lower(),
                        size=packet.wire_size(),
                        ack_eliciting=packet.ack_eliciting,
                        frames=tuple(f.describe() for f in packet.frames),
                    )
                )
        self.stats.datagrams_sent += 1
        self._note_datagram_sent(size)
        self.transmit(dgram, size)

    def _may_send_now(self, size: int, dgram: Datagram, is_probe: bool) -> bool:
        """Amplification gate (server overrides)."""
        return True

    def _note_datagram_sent(self, size: int) -> None:
        """Post-send accounting hook (server tracks amplification)."""

    # ------------------------------------------------------------------
    # acknowledgment policy
    # ------------------------------------------------------------------

    def _maybe_send_acks(self) -> None:
        if self.closed:
            return
        ack_packets: List[Packet] = []
        for space in (Space.INITIAL, Space.HANDSHAKE):
            state = self._ack_state[space]
            if state.needs_ack and not self.recovery.spaces[space].discarded:
                if not self.is_client and not self.profile.sends_initial_ack:
                    state.needs_ack = False
                    continue
                if self._suppress_immediate_ack(space):
                    continue
                if self._datagrams_queued > 0:
                    # More datagrams of this burst are still queued;
                    # acknowledge once per receive batch.
                    continue
                packet = self.build_packet(space, ())
                if packet.frames:
                    ack_packets.append(packet)
        if ack_packets:
            # Initial + Handshake acks ride in one (padded) datagram.
            self.send_packets(ack_packets)
        app_state = self._ack_state[Space.APPLICATION]
        if app_state.needs_ack and self._has_app_keys:
            # The ack policy strategy decides the cadence; the default
            # policy reads it straight off the ImplProfile.
            if app_state.eliciting_since_ack >= self._ack_policy.ack_every_n(
                self.profile
            ):
                self._send_app_ack()
            elif self._ack_timer is None:
                self._ack_timer = self.loop.call_later(
                    self._ack_policy.max_ack_delay_ms(self.profile),
                    self._on_ack_timer,
                )

    def _suppress_immediate_ack(self, space: Space) -> bool:
        """Server hook: the WFC server withholds its Initial ACK until
        the certificate is available."""
        return False

    def _send_app_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        state = self._ack_state[Space.APPLICATION]
        if not state.needs_ack:
            return
        packet = self.build_packet(Space.APPLICATION, ())
        if packet.frames:
            self.send_packets([packet])

    def _on_ack_timer(self) -> None:
        self._ack_timer = None
        if not self.closed:
            self._send_app_ack()

    # ------------------------------------------------------------------
    # loss-detection timer
    # ------------------------------------------------------------------

    def _rearm_loss_timer(self) -> None:
        if self.closed:
            return
        deadline = self.recovery.loss_detection_deadline(self.loop.now)
        timer = self._loss_timer
        if deadline is None:
            if timer is not None:
                timer.cancel()
                self._loss_timer = None
            return
        when = max(deadline[0], self.loop.now)
        if timer is not None and not timer.cancelled:
            if timer.when <= when:
                # The armed timer fires at or before the new deadline;
                # keep it — :meth:`_on_loss_timer` re-checks the actual
                # deadline at fire time and re-arms when it woke early.
                # This avoids a cancel + allocation on the (very common)
                # case of the deadline moving later.
                return
            timer.cancel()
        self._loss_timer = self.loop.call_at(when, self._on_loss_timer)

    def _on_loss_timer(self) -> None:
        self._loss_timer = None
        if self.closed:
            return
        deadline = self.recovery.loss_detection_deadline(self.loop.now)
        if deadline is None:
            return
        when, space, kind = deadline
        if when > self.loop.now + 1e-6:
            self._rearm_loss_timer()
            return
        self._suspend_rearm = True
        try:
            if kind == "loss":
                lost_by_space: Dict[Space, List[SentPacket]] = {}
                for sp_space, sp in self.recovery.detect_lost_on_timer(self.loop.now):
                    lost_by_space.setdefault(sp_space, []).append(sp)
                for sp_space, lost in lost_by_space.items():
                    self._on_packets_lost(sp_space, lost)
            else:
                self.recovery.on_pto_fired()
                if self.recovery.pto_count > MAX_PTO_COUNT:
                    self.abort("too many consecutive PTOs")
                    return
                self._on_pto(space)
        finally:
            self._suspend_rearm = False
        self._rearm_loss_timer()

    def _on_pto(self, space: Space) -> None:
        """Send a probe (RFC 9002 §6.2.4): retransmit outstanding data
        in the space when available, else a PING."""
        self.stats.probes_sent += 1
        packets: List[Packet] = []
        ranges = self._unacked_crypto_ranges(space)
        if ranges:
            packets.extend(self._crypto_packets(space, ranges))
        else:
            app_ranges = self._unacked_app_data()
            if space is Space.APPLICATION and app_ranges:
                packets.append(
                    self.build_packet(Space.APPLICATION, tuple(app_ranges))
                )
            else:
                packets.append(self.build_packet(space, (PingFrame(),)))
        # Opportunistically bundle outstanding application data with a
        # handshake-space probe (RFC 9002 recommends bundling tail
        # bytes; stacks coalesce a 1-RTT retransmission).
        if (
            self.is_client
            and space is not Space.APPLICATION
            and self._has_app_keys
        ):
            app_frames = self._unacked_app_data()
            if app_frames:
                packets.append(
                    self.build_packet(Space.APPLICATION, tuple(app_frames))
                )
        self.send_packets(packets, is_probe=True)

    def _unacked_crypto_ranges(self, space: Space) -> List[Tuple[int, int]]:
        buf = self.crypto_send.get(space)
        if buf is None or self.recovery.spaces[space].discarded:
            return []
        return buf.unacked_ranges()

    def _unacked_app_data(self) -> List[StreamFrame]:
        frames: List[StreamFrame] = []
        for stream in self.streams.send.values():
            for start, end in stream.unacked_sent_ranges():
                cursor = start
                while cursor < end:
                    length = min(MAX_FRAME_PAYLOAD, end - cursor)
                    fin = (
                        stream.fin_queued
                        and cursor + length == stream.total_length
                    )
                    frames.append(
                        StreamFrame(
                            stream_id=stream.stream_id,
                            offset=cursor,
                            length=length,
                            fin=fin,
                            label=stream.label,
                        )
                    )
                    cursor += length
            if (
                stream.fin_queued
                and not stream.fin_acked
                and not stream.unacked_sent_ranges()
                and stream.bytes_unsent == 0
                and stream.total_length == 0
            ):
                frames.append(
                    StreamFrame(
                        stream_id=stream.stream_id,
                        offset=0,
                        length=0,
                        fin=True,
                        label=stream.label,
                    )
                )
        return frames

    # ------------------------------------------------------------------
    # key lifecycle / shutdown
    # ------------------------------------------------------------------

    def discard_space(self, space: Space) -> None:
        for sp in self.recovery.spaces[space].sent.values():
            if sp.in_flight and not sp.declared_lost:
                self.cc.on_packet_discarded(sp.size)
        self.recovery.discard_space(space, now_ms=self.loop.now)
        self._ack_state[space] = _AckSpaceState()
        self._rearm_loss_timer()

    def abort(self, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        self.stats.aborted = reason
        self._cancel_timers()

    def finish(self) -> None:
        """Graceful local teardown once the exchange completed."""
        self.closed = True
        self._cancel_timers()

    def _cancel_timers(self) -> None:
        if self._loss_timer is not None:
            self._loss_timer.cancel()
            self._loss_timer = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def snapshot_stats(self) -> ConnectionStats:
        self.stats.probes_sent = self.recovery.probes_sent
        self.stats.spurious_retransmissions = self.recovery.spurious_retransmissions
        return self.stats
