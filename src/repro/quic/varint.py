"""QUIC variable-length integer encoding (RFC 9000 §16).

A varint uses the two most significant bits of the first byte to encode
the total length (1, 2, 4, or 8 bytes), leaving 6, 14, 30, or 62 bits
for the value.
"""

from __future__ import annotations

from typing import Tuple

#: Largest value representable as a QUIC varint (2**62 - 1).
MAX_VARINT = (1 << 62) - 1


class VarintError(ValueError):
    """Raised on out-of-range values or malformed encodings."""


def varint_size(value: int) -> int:
    """Number of bytes needed to encode ``value`` as a varint."""
    if value < 0:
        raise VarintError(f"varint cannot encode negative value {value}")
    if value <= 0x3F:
        return 1
    if value <= 0x3FFF:
        return 2
    if value <= 0x3FFFFFFF:
        return 4
    if value <= MAX_VARINT:
        return 8
    raise VarintError(f"value {value} exceeds varint range")


def encode_varint(value: int) -> bytes:
    """Encode ``value`` in the fewest bytes possible."""
    size = varint_size(value)
    if size == 1:
        return bytes([value])
    if size == 2:
        return bytes([0x40 | (value >> 8), value & 0xFF])
    if size == 4:
        return bytes(
            [
                0x80 | (value >> 24),
                (value >> 16) & 0xFF,
                (value >> 8) & 0xFF,
                value & 0xFF,
            ]
        )
    out = bytearray(8)
    for i in range(7, -1, -1):
        out[i] = value & 0xFF
        value >>= 8
    out[0] |= 0xC0
    return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, new_offset)``.
    """
    if offset >= len(data):
        raise VarintError("varint truncated: no bytes available")
    first = data[offset]
    prefix = first >> 6
    length = 1 << prefix
    if offset + length > len(data):
        raise VarintError(
            f"varint truncated: need {length} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
    value = first & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, offset + length
