"""The QUIC server connection with IACK/WFC policies.

Models the frontend server of Figure 1: on receiving the TLS
ClientHello it must fetch the certificate (emulated, as in the paper,
by a configurable delay Δt plus crypto processing time) before it can
send the ServerHello. The server either

* **waits for the certificate (WFC)** — first packet is the coalesced
  ACK–ServerHello after Δt, inflating the client's first RTT sample; or
* sends an **instant ACK (IACK)** — an immediate Initial packet
  carrying only an ACK frame, which is *not ack-eliciting* and
  therefore yields the server no RTT sample (the Figure 6 mechanism),
  but gives the client an accurate one (the Figures 5/7 mechanism).

The anti-amplification limit (RFC 9000 §8.1) gates every datagram
until a Handshake packet validates the client address.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.http.base import HttpSemantics, RequestSpec
from repro.impls.profile import ImplProfile
from repro.qlog.writer import QlogWriter
from repro.quic.amplification import AmplificationLimiter
from repro.quic.certs import Certificate, SMALL_CERTIFICATE
from repro.quic.cid import make_cid
from repro.quic.coalescing import Datagram, MAX_DATAGRAM_SIZE
from repro.quic.connection import MAX_FRAME_PAYLOAD, Endpoint
from repro.quic.frames import (
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    StreamFrame,
)
from repro.quic.packet import Packet, PacketType, Space
from repro.quic.tls import (
    CLIENT_HELLO_SIZE,
    FINISHED_SIZE,
    server_handshake_messages,
    server_hello,
)
from repro.sim.engine import EventLoop


class ServerMode(enum.Enum):
    """The two server behaviors of Figure 1."""

    WFC = "wait-for-certificate"
    IACK = "instant-ack"


@dataclass
class ServerConfig:
    """Deployment knobs of the frontend server."""

    mode: ServerMode = ServerMode.WFC
    #: Frontend <-> certificate-store delay Δt (§3: "Backend–frontend
    #: delays are emulated by a configurable sleep period").
    delta_t_ms: float = 0.0
    certificate: Certificate = field(default_factory=lambda: SMALL_CERTIFICATE)
    #: Whether Initial retransmissions carry a NEW_CONNECTION_ID with a
    #: bumped retire_prior_to — the behavior that, combined with
    #: quiche's duplicate-retirement intolerance, aborts quiche
    #: connections (§4.2).
    ncid_on_initial_retransmit: bool = True
    #: Pad the instant ACK to 1200 B to probe the path MTU, as
    #: Cloudflare does (§5) — consumes amplification budget.
    pad_instant_ack: bool = False


class ServerConnection(Endpoint):
    """A QUIC server serving one connection."""

    is_client = False

    def __init__(
        self,
        loop: EventLoop,
        profile: ImplProfile,
        http: HttpSemantics,
        config: Optional[ServerConfig] = None,
        rng: Optional[random.Random] = None,
        qlog: Optional[QlogWriter] = None,
        name: str = "server",
        draws=None,
        recovery_profile=None,
    ):
        super().__init__(
            loop,
            profile,
            rng=rng,
            qlog=qlog,
            name=name,
            draws=draws,
            recovery_profile=recovery_profile,
        )
        self.http = http
        self.config = config if config is not None else ServerConfig()
        self.amplification = AmplificationLimiter()
        self._blocked: List[Tuple[Datagram, bool]] = []
        self._started = False
        self._cert_ready = False
        self._iack_sent = False
        self._request: Optional[RequestSpec] = None
        self._response_started = False
        self._next_cid_seq = 1
        #: When the instant ACK was sent (for trace analysis).
        self.iack_sent_ms: Optional[float] = None
        self.server_hello_sent_ms: Optional[float] = None

    # ------------------------------------------------------------------
    # amplification accounting
    # ------------------------------------------------------------------

    def _on_datagram_arrival(self, dgram: Datagram) -> None:
        self.amplification.on_datagram_received(dgram.size)
        self._flush_blocked()

    def _may_send_now(self, size: int, dgram: Datagram, is_probe: bool) -> bool:
        # Preserve flight order: once a datagram is queued behind the
        # amplification limit, everything later queues behind it too.
        if not self._blocked and self.amplification.can_send(size):
            return True
        self.stats.amplification_blocked_events += 1
        self._blocked.append((dgram, is_probe))
        return False

    def _note_datagram_sent(self, size: int) -> None:
        self.amplification.on_datagram_sent(size)

    def _flush_blocked(self) -> None:
        if not self._blocked:
            return
        pending = self._blocked
        self._blocked = []
        for dgram, is_probe in pending:
            self._send_datagram(dgram, is_probe=is_probe)
        self._rearm_loss_timer()

    # ------------------------------------------------------------------
    # packet processing overrides
    # ------------------------------------------------------------------

    def _process_packet(self, packet, dgram, buffered: bool = False) -> None:
        if (
            packet.packet_type is PacketType.HANDSHAKE
            and not self.amplification.validated
        ):
            # RFC 9000 §8.1: a Handshake packet proves the address.
            self.amplification.validate()
            # RFC 9001 §4.9.1: the server discards Initial keys on the
            # first Handshake packet.
            if not self.recovery.spaces[Space.INITIAL].discarded:
                self.discard_space(Space.INITIAL)
            self._flush_blocked()
        super()._process_packet(packet, dgram, buffered=buffered)

    def _suppress_immediate_ack(self, space: Space) -> bool:
        if space is not Space.INITIAL:
            return space is Space.HANDSHAKE and (
                self.profile.handshake_ack_delay_ms is None
            )
        if self.config.mode is ServerMode.WFC:
            # WFC: the first ACK rides on the coalesced ACK–ServerHello.
            return not self._cert_ready
        # IACK: exactly one instant ACK is sent (explicitly, after
        # Initial-key derivation); acknowledgments for further Initial
        # packets received while the certificate fetch is in progress
        # (client PTO probes) are bundled into the ServerHello flight —
        # producing the coalesced PING replies that trip up quiche
        # (§4.1).
        return not self._iack_sent or not self._cert_ready

    # ------------------------------------------------------------------
    # handshake logic
    # ------------------------------------------------------------------

    def on_crypto_progress(self, space: Space) -> None:
        if space is Space.INITIAL and not self._started:
            expected = self.crypto_expected[Space.INITIAL] or CLIENT_HELLO_SIZE
            if self.crypto_recv[Space.INITIAL].has(expected):
                self._started = True
                self._on_client_hello()
        if space is Space.HANDSHAKE and not self.handshake_complete:
            expected = self.crypto_expected[Space.HANDSHAKE] or FINISHED_SIZE
            if self.crypto_recv[Space.HANDSHAKE].has(expected):
                self._complete_handshake()

    def _on_client_hello(self) -> None:
        """ClientHello received: emit the instant ACK (IACK mode) and
        start the certificate fetch."""
        if self.config.mode is ServerMode.IACK and self.profile.sends_initial_ack:
            self.loop.call_later(self.profile.iack_processing_ms, self._send_iack)
        fetch = self.config.delta_t_ms + self._crypto_processing_sample()
        self.loop.call_later(fetch, self._handshake_ready)

    def _crypto_processing_sample(self) -> float:
        """Time to compile ServerHello, certificate, and signature —
        dominated by the signing function (§4.1)."""
        jitter = self.draws.crypto_jitter(self.profile.crypto_processing_jitter_ms)
        return self.profile.crypto_processing_ms + jitter

    def _send_iack(self) -> None:
        if self.closed or self._iack_sent:
            return
        self._iack_sent = True
        self.iack_sent_ms = self.loop.now
        packet = self.build_packet(
            Space.INITIAL, (), ack_delay_ms=self.profile.initial_ack_delay_ms
        )
        if packet.frames:
            self.send_packets([packet])

    def _pad_server_datagram(self, group: List[Packet]) -> bool:
        if not self.config.pad_instant_ack:
            return False
        return all(
            p.packet_type is PacketType.INITIAL and not p.ack_eliciting
            for p in group
        )

    def _handshake_ready(self) -> None:
        """Certificate available: send the first server flight —
        Initial(ACK?, CRYPTO[SH]) coalesced with Handshake(CRYPTO[EE,
        CERT, CV, FIN]) across as many datagrams as needed."""
        if self.closed:
            return
        self._cert_ready = True
        sh = server_hello()
        offset, length = self.crypto_send[Space.INITIAL].append(sh)
        initial_frame = CryptoFrame(
            offset=offset,
            length=length,
            label=sh.name,
            stream_total=self.crypto_send[Space.INITIAL].length,
        )
        initial_pkt = self.build_packet(Space.INITIAL, (initial_frame,))
        hs_buffer = self.crypto_send[Space.HANDSHAKE]
        for message in server_handshake_messages(self.config.certificate):
            hs_buffer.append(message)
        total_hs = hs_buffer.length
        groups: List[List[Packet]] = []
        current: List[Packet] = [initial_pkt]
        current_size = initial_pkt.wire_size()
        cursor = 0
        while cursor < total_hs:
            # Header + AEAD overhead of a Handshake packet ~ 45 bytes.
            room = MAX_DATAGRAM_SIZE - current_size - 60
            if room < 100:
                groups.append(current)
                current = []
                current_size = 0
                room = MAX_DATAGRAM_SIZE - 60
            chunk = min(room, total_hs - cursor, MAX_FRAME_PAYLOAD)
            frame = CryptoFrame(
                offset=cursor,
                length=chunk,
                label=hs_buffer.label_for(cursor, cursor + chunk),
                stream_total=total_hs,
            )
            packet = self.build_packet(Space.HANDSHAKE, (frame,))
            current.append(packet)
            current_size += packet.wire_size()
            cursor += chunk
        if current:
            groups.append(current)
        # 0.5-RTT data: HTTP/3 servers emit their control-stream
        # SETTINGS with the first flight — the reason "HTTP/3
        # generally has a lower TTFB ... one RTT faster" (Figure 5).
        early_frames = self._early_data_frames()
        if early_frames:
            early_pkt = self.build_packet(Space.APPLICATION, tuple(early_frames))
            if sum(p.wire_size() for p in groups[-1]) + early_pkt.wire_size() <= MAX_DATAGRAM_SIZE:
                groups[-1].append(early_pkt)
            else:
                groups.append([early_pkt])
        self.server_hello_sent_ms = self.loop.now
        self.send_packets([], group_into_datagrams=groups)

    def _early_data_frames(self) -> List[Frame]:
        frames: List[Frame] = []
        for write in self.http.server_handshake_writes():
            stream = self.streams.get_send(write.stream_id)
            stream.label = write.label
            stream.write(write.size)
            if write.fin:
                stream.finish()
            chunk = stream.next_chunk(write.size)
            if chunk is not None:
                offset, length, fin = chunk
                frames.append(
                    StreamFrame(
                        stream_id=write.stream_id,
                        offset=offset,
                        length=length,
                        fin=fin,
                        label=write.label,
                    )
                )
        return frames

    def _complete_handshake(self) -> None:
        """Client Finished verified: handshake complete and confirmed
        (RFC 9001 §4.1.2 for servers)."""
        self.handshake_complete = True
        self.handshake_confirmed = True
        self.stats.handshake_complete_ms = self.loop.now
        self.stats.handshake_confirmed_ms = self.loop.now
        self.recovery.set_handshake_complete()
        # Implementations that acknowledge in the Handshake space
        # (Table 3: haproxy, lsquic, mvfst, neqo, xquic) do so before
        # the keys are dropped.
        if (
            self.profile.handshake_ack_delay_ms is not None
            and self._ack_state[Space.HANDSHAKE].needs_ack
            and not self.recovery.spaces[Space.HANDSHAKE].discarded
        ):
            ack_packet = self.build_packet(
                Space.HANDSHAKE, (),
                ack_delay_ms=self.profile.handshake_ack_delay_ms,
            )
            if ack_packet.frames:
                self.send_packets([ack_packet])
        if not self.recovery.spaces[Space.HANDSHAKE].discarded:
            self.discard_space(Space.HANDSHAKE)
        frames: List[Frame] = [
            HandshakeDoneFrame(),
            NewConnectionIdFrame(
                sequence=self._next_cid_seq,
                retire_prior_to=0,
                connection_id=make_cid(0x5E, self._next_cid_seq),
            ),
        ]
        self._next_cid_seq += 1
        self.send_packets([self.build_packet(Space.APPLICATION, tuple(frames))])
        self._drain_pending()
        self._maybe_start_response()

    # ------------------------------------------------------------------
    # request / response
    # ------------------------------------------------------------------

    def on_stream_data(self, frame: StreamFrame) -> None:
        if frame.stream_id != self.http.request_stream_id:
            return
        stream = self.streams.get_recv(frame.stream_id)
        if stream.complete and self._request is None:
            self._request = RequestSpec()
            self._maybe_start_response()

    def set_request_spec(self, request: RequestSpec) -> None:
        """Configure the resource this server serves (the interop
        harness sets the 10 KB / 10 MB file sizes here)."""
        self._pending_request_spec = request

    def _maybe_start_response(self) -> None:
        if (
            self._request is None
            or not self.handshake_complete
            or self._response_started
        ):
            return
        self._response_started = True
        spec = getattr(self, "_pending_request_spec", None) or self._request
        for write in self.http.server_response_writes(spec):
            stream = self.streams.get_send(write.stream_id)
            stream.label = write.label
            stream.write(write.size)
            if write.fin:
                stream.finish()
        self._pump_response()

    def _pump_response(self) -> None:
        """Send as much response data as the congestion window allows."""
        packets: List[Packet] = []
        budget = self.cc.available_window()
        for stream in self.streams.send.values():
            while stream.bytes_unsent > 0:
                projected = MAX_FRAME_PAYLOAD + 60
                if budget < projected:
                    break
                chunk = stream.next_chunk(MAX_FRAME_PAYLOAD)
                if chunk is None:
                    break
                offset, length, fin = chunk
                packet = self.build_packet(
                    Space.APPLICATION,
                    (
                        StreamFrame(
                            stream_id=stream.stream_id,
                            offset=offset,
                            length=length,
                            fin=fin,
                            label=stream.label,
                        ),
                    ),
                )
                packets.append(packet)
                budget -= packet.wire_size()
        if packets:
            # Each packet travels in its own datagram (bulk data).
            self.send_packets([], group_into_datagrams=[[p] for p in packets])

    def after_datagram(self, dgram: Datagram) -> None:
        self._maybe_start_response()
        if self._response_started:
            self._pump_response()

    # ------------------------------------------------------------------
    # retransmission override: CID rotation on Initial retransmits
    # ------------------------------------------------------------------

    def _crypto_packets(self, space: Space, ranges) -> List[Packet]:
        packets = super()._crypto_packets(space, ranges)
        if (
            packets
            and space is Space.INITIAL
            and self._cert_ready
            and self.config.ncid_on_initial_retransmit
        ):
            first = packets[0]
            ncid = NewConnectionIdFrame(
                sequence=self._next_cid_seq,
                retire_prior_to=self._next_cid_seq,
                connection_id=make_cid(0x5E, self._next_cid_seq),
            )
            self._next_cid_seq += 1
            packets[0] = Packet(
                packet_type=first.packet_type,
                packet_number=first.packet_number,
                frames=first.frames + (ncid,),
                dcid=first.dcid,
                scid=first.scid,
                token=first.token,
                pn_length=first.pn_length,
            )
        return packets
