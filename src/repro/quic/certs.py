"""TLS certificates as size-bearing objects.

The paper arms the server with two certificates: one of 1,212 B that
allows a 1-RTT handshake and one of 5,113 B that pushes the first
server flight over the 3x anti-amplification limit (§3). Only the
encoded chain length matters for handshake timing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Certificate:
    """A TLS certificate chain with a known encoded size."""

    name: str
    chain_size: int

    def __post_init__(self) -> None:
        if self.chain_size <= 0:
            raise ValueError(f"certificate chain size must be positive: {self.chain_size}")

    def fits_amplification_budget(
        self,
        client_first_datagram: int = 1200,
        handshake_overhead: int = 700,
    ) -> bool:
        """Rough check whether the full first server flight fits in the
        3x budget earned by the client's first datagram.

        ``handshake_overhead`` approximates ServerHello +
        EncryptedExtensions + CertificateVerify + Finished + packet
        headers.
        """
        return self.chain_size + handshake_overhead <= 3 * client_first_datagram


#: The 1,212 B certificate that permits a 1-RTT handshake (§3).
SMALL_CERTIFICATE = Certificate(name="small-1212", chain_size=1212)

#: The 5,113 B certificate that exceeds the anti-amplification limit (§3).
LARGE_CERTIFICATE = Certificate(name="large-5113", chain_size=5113)
