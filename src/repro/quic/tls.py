"""Simulated TLS 1.3 handshake messages (sizes and ordering only).

The QUIC handshake embeds TLS 1.3 in CRYPTO frames: the client sends a
ClientHello; the server responds with ServerHello in the Initial space
and EncryptedExtensions, Certificate, CertificateVerify, and Finished
in the Handshake space; the client finishes with its own Finished.

No cryptography is performed — the paper's effects depend on message
*sizes* (amplification limit, coalescing) and *processing time*
(signature computation is "the single most CPU consuming function",
§4.1), both of which are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.quic.certs import Certificate

# Representative TLS 1.3 message sizes in bytes. The ClientHello size
# matches a typical browser hello with a few extensions; the others are
# standard for an RSA-2048 certificate chain.
CLIENT_HELLO_SIZE = 280
SERVER_HELLO_SIZE = 123
ENCRYPTED_EXTENSIONS_SIZE = 78
CERTIFICATE_MSG_OVERHEAD = 9  # handshake header + context + list length
CERTIFICATE_VERIFY_SIZE = 264  # RSA-PSS 2048-bit signature + header
FINISHED_SIZE = 36  # SHA-256 verify_data + header


@dataclass(frozen=True)
class TlsMessage:
    """One TLS handshake message with its encoded size."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"TLS message size must be positive: {self.size}")


def client_hello() -> TlsMessage:
    """The TLS ClientHello the client puts in its first Initial packet."""
    return TlsMessage("CH", CLIENT_HELLO_SIZE)


def server_hello() -> TlsMessage:
    """The ServerHello, sent in the Initial packet number space."""
    return TlsMessage("SH", SERVER_HELLO_SIZE)


def server_handshake_messages(certificate: Certificate) -> List[TlsMessage]:
    """EE, Certificate, CertificateVerify, Finished — the Handshake
    space portion of the first server flight."""
    return [
        TlsMessage("EE", ENCRYPTED_EXTENSIONS_SIZE),
        TlsMessage("CERT", CERTIFICATE_MSG_OVERHEAD + certificate.chain_size),
        TlsMessage("CV", CERTIFICATE_VERIFY_SIZE),
        TlsMessage("FIN", FINISHED_SIZE),
    ]


def client_finished() -> TlsMessage:
    """The client Finished, closing the handshake."""
    return TlsMessage("FIN", FINISHED_SIZE)


def server_flight_size(certificate: Certificate) -> Tuple[int, int]:
    """(initial_crypto_bytes, handshake_crypto_bytes) of the first
    server flight for a given certificate."""
    hs = sum(m.size for m in server_handshake_messages(certificate))
    return SERVER_HELLO_SIZE, hs


class CryptoSendBuffer:
    """Outgoing CRYPTO stream for one packet number space.

    Tracks which byte ranges have been sent/acknowledged so that lost
    handshake data can be retransmitted (RFC 9000 §19.6). Data content
    is abstract; only offsets, lengths, and labels are kept.
    """

    def __init__(self) -> None:
        self._length = 0
        self._labels: List[Tuple[int, int, str]] = []  # (start, end, label)
        self._acked: List[Tuple[int, int]] = []  # merged (start, end)

    def append(self, message: TlsMessage) -> Tuple[int, int]:
        """Queue a TLS message; returns its (offset, length)."""
        start = self._length
        self._length += message.size
        self._labels.append((start, self._length, message.name))
        return start, message.size

    @property
    def length(self) -> int:
        return self._length

    def label_for(self, start: int, end: int) -> str:
        """Comma-joined message names overlapping [start, end)."""
        names = [
            name
            for (s, e, name) in self._labels
            if s < end and e > start
        ]
        return ",".join(names)

    def mark_acked(self, start: int, end: int) -> None:
        """Record [start, end) as acknowledged (merging ranges)."""
        if start >= end:
            return
        merged: List[Tuple[int, int]] = []
        new = (start, end)
        for rng in self._acked:
            if rng[1] < new[0] or rng[0] > new[1]:
                merged.append(rng)
            else:
                new = (min(new[0], rng[0]), max(new[1], rng[1]))
        merged.append(new)
        merged.sort()
        self._acked = merged

    def unacked_ranges(self) -> List[Tuple[int, int]]:
        """Byte ranges queued but not yet acknowledged."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for start, end in self._acked:
            if cursor < start:
                out.append((cursor, min(start, self._length)))
            cursor = max(cursor, end)
        if cursor < self._length:
            out.append((cursor, self._length))
        return out

    @property
    def fully_acked(self) -> bool:
        return self._length == 0 or not self.unacked_ranges()


class CryptoReceiveBuffer:
    """Incoming CRYPTO stream reassembly for one space.

    Tracks contiguous delivery so the endpoint knows when a full
    flight (e.g. SH, or EE..FIN) has arrived.
    """

    def __init__(self) -> None:
        self._ranges: List[Tuple[int, int]] = []

    def receive(self, offset: int, length: int) -> None:
        if length <= 0:
            return
        self._ranges.append((offset, offset + length))
        self._ranges.sort()
        merged: List[Tuple[int, int]] = []
        for start, end in self._ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._ranges = merged

    def contiguous_length(self) -> int:
        """Bytes available from offset 0 without gaps."""
        if not self._ranges or self._ranges[0][0] != 0:
            return 0
        return self._ranges[0][1]

    def has(self, length: int) -> bool:
        """Whether the first ``length`` bytes have fully arrived."""
        return self.contiguous_length() >= length
