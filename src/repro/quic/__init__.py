"""A from-scratch QUIC implementation for handshake-timing research.

Implements the protocol mechanics of RFC 9000 (transport) and RFC 9002
(loss detection and congestion control) that determine the behavior the
paper studies:

* packet number spaces, ack-eliciting rules, and coalescing,
* the RTT estimator and Probe Timeout (PTO) including the
  first-sample initialization that instant ACK exploits,
* the 3x anti-amplification limit with address validation,
* CRYPTO/STREAM retransmission and PTO probes,
* the server-side **instant ACK (IACK)** versus
  **wait-for-certificate (WFC)** policies of Figure 1.

TLS 1.3 is simulated at message granularity with byte-accurate sizes
(:mod:`repro.quic.tls`); no actual cryptography is performed, which is
sufficient because only sizes, ordering, and processing delays affect
handshake timing.
"""

from repro.quic.amplification import AmplificationLimiter
from repro.quic.certs import LARGE_CERTIFICATE, SMALL_CERTIFICATE, Certificate
from repro.quic.client import ClientConnection
from repro.quic.coalescing import Datagram
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    Frame,
    HandshakeDoneFrame,
    NewConnectionIdFrame,
    PaddingFrame,
    PingFrame,
    RetireConnectionIdFrame,
    StreamFrame,
)
from repro.quic.packet import Packet, PacketType, Space
from repro.quic.recovery import Recovery, RttEstimator
from repro.quic.server import ServerConnection, ServerMode

__all__ = [
    "Packet",
    "PacketType",
    "Space",
    "Frame",
    "AckFrame",
    "CryptoFrame",
    "StreamFrame",
    "PingFrame",
    "PaddingFrame",
    "HandshakeDoneFrame",
    "NewConnectionIdFrame",
    "RetireConnectionIdFrame",
    "ConnectionCloseFrame",
    "Datagram",
    "Recovery",
    "RttEstimator",
    "AmplificationLimiter",
    "Certificate",
    "SMALL_CERTIFICATE",
    "LARGE_CERTIFICATE",
    "ClientConnection",
    "ServerConnection",
    "ServerMode",
]
