"""repro — reproduction of *ReACKed QUICer* (IMC 2024).

This package reproduces the systems and experiments of

    Mücke, Nawrocki, Hiesgen, Schmidt, Wählisch.
    "ReACKed QUICer: Measuring the Performance of Instant Acknowledgments
    in QUIC Handshakes." ACM IMC 2024.

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event network simulator (links, delay,
    bandwidth, indexed datagram loss, traces).
``repro.quic``
    A from-scratch QUIC handshake and transfer implementation: wire
    format, packet number spaces, coalescing, RFC 9002 loss recovery,
    anti-amplification, simulated TLS 1.3.
``repro.http``
    Minimal HTTP/1.1 and HTTP/3 semantics on top of QUIC streams.
``repro.impls``
    Implementation profiles for the eight client stacks and the server
    stacks the paper studies (default PTOs, coalescing, quirks).
``repro.qlog``
    Structured qlog-style event logging with per-implementation
    metric-exposure policies.
``repro.interop``
    QUIC-Interop-Runner-style scenario harness.
``repro.wild``
    Synthetic macroscopic Internet: Tranco-like toplist, AS database,
    CDN deployment models, QScanner-like prober, Cloudflare
    longitudinal model.
``repro.core``
    The paper's analytical contribution: PTO evolution model,
    sweet-spot analysis, deployment advisor, PTO calculation from logs.
``repro.analysis``
    Statistics and table/series rendering helpers.
``repro.experiments``
    One module per paper table and figure.
"""

from repro.core.advisor import DeploymentAdvisor, Recommendation
from repro.core.pto_model import PtoModel, first_pto_reduction
from repro.impls.registry import CLIENT_PROFILES, client_profile
from repro.quic.recovery import RttEstimator

__version__ = "1.0.0"

__all__ = [
    "PtoModel",
    "first_pto_reduction",
    "DeploymentAdvisor",
    "Recommendation",
    "RttEstimator",
    "client_profile",
    "CLIENT_PROFILES",
    "__version__",
]
