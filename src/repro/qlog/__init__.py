"""Qlog-style structured logging (draft-ietf-quic-qlog-main-schema).

"Qlog, a structured logging format for QUIC, contains data about sent
packets, received packets, and recovery:metrics, including the
smoothed RTT and RTT variation calculated by the implementation.
Nonetheless, implementations differ in how often and how exhaustive
recovery:metrics are exposed" (§3). This package models both the
event stream and those per-implementation exposure differences
(Appendix E): exposure share, timestamp resolution, and whether RTT
variance is logged at all.
"""

from repro.qlog.analysis import (
    count_metric_updates,
    count_new_ack_packets,
    first_pto_from_qlog,
    metric_series,
)
from repro.qlog.events import (
    EventCategory,
    MetricsUpdated,
    PacketEvent,
    QlogEvent,
)
from repro.qlog.writer import ExposurePolicy, QlogWriter

__all__ = [
    "QlogEvent",
    "PacketEvent",
    "MetricsUpdated",
    "EventCategory",
    "QlogWriter",
    "ExposurePolicy",
    "count_metric_updates",
    "count_new_ack_packets",
    "first_pto_from_qlog",
    "metric_series",
]
