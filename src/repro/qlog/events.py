"""Qlog event model.

A small, typed subset of the qlog main schema: ``transport``-category
packet events and ``recovery``-category metric updates — the event
kinds the paper's analysis pipeline consumes ("we calculate PTOs based
on sent and received packets according to the standard", §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class EventCategory(enum.Enum):
    TRANSPORT = "transport"
    RECOVERY = "recovery"
    HTTP = "http"


@dataclass(frozen=True)
class QlogEvent:
    """Base event: a timestamp plus a name like ``transport:packet_sent``."""

    time_ms: float
    category: EventCategory
    name: str
    data: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def qualified_name(self) -> str:
        return f"{self.category.value}:{self.name}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time_ms,
            "name": self.qualified_name,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class PacketEvent(QlogEvent):
    """``transport:packet_sent`` / ``transport:packet_received``."""

    packet_type: str = ""
    packet_number: int = -1
    space: str = ""
    size: int = 0
    ack_eliciting: bool = False
    frames: Tuple[str, ...] = ()
    #: Packet numbers newly acknowledged by ACK frames in this packet
    #: (receive direction only) — the basis of "packets with new ACKs".
    newly_acked: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        base = super().to_dict()
        base["data"].update(
            {
                "header": {
                    "packet_type": self.packet_type,
                    "packet_number": self.packet_number,
                },
                "raw": {"length": self.size},
                "space": self.space,
                "ack_eliciting": self.ack_eliciting,
                "frames": list(self.frames),
                "newly_acked": list(self.newly_acked),
            }
        )
        return base


@dataclass(frozen=True)
class MetricsUpdated(QlogEvent):
    """``recovery:metrics_updated``.

    ``rtt_variance`` may be ``None`` — "neqo, mvfst and picoquic do
    not log RTT variance" (Appendix E); the paper then recalculates it
    from packet events, which :func:`repro.core.pto_calc` mirrors.
    """

    smoothed_rtt_ms: Optional[float] = None
    rtt_variance_ms: Optional[float] = None
    latest_rtt_ms: Optional[float] = None
    min_rtt_ms: Optional[float] = None
    pto_count: int = 0

    def to_dict(self) -> Dict[str, Any]:
        base = super().to_dict()
        base["data"].update(
            {
                "smoothed_rtt": self.smoothed_rtt_ms,
                "rtt_variance": self.rtt_variance_ms,
                "latest_rtt": self.latest_rtt_ms,
                "min_rtt": self.min_rtt_ms,
                "pto_count": self.pto_count,
            }
        )
        return base
