"""Qlog writers with per-implementation exposure policies.

Appendix E: "timestamps are provided with different resolutions, i.e.,
µs, ms, and s, and neqo, mvfst and picoquic do not log RTT variance
... aioquic, go-x-net, mvfst, and quiche expose the maximum of PTO
updates available, while neqo, ngtcp2, picoquic, and quic-go rely on a
smaller fraction of the samples."
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.qlog.events import MetricsUpdated, PacketEvent, QlogEvent

_RESOLUTION_QUANTUM_MS = {"us": 0.001, "ms": 1.0, "s": 1000.0}


@dataclass(frozen=True)
class ExposurePolicy:
    """How much of the connection's internals reach the qlog."""

    #: Share of recovery metric updates that are actually logged.
    metrics_exposure: float = 1.0
    #: Whether ``rtt_variance`` is included in metric events.
    logs_rtt_variance: bool = True
    #: Timestamp resolution: "us", "ms", or "s".
    timestamp_resolution: str = "us"

    def __post_init__(self) -> None:
        if not 0.0 <= self.metrics_exposure <= 1.0:
            raise ValueError("metrics_exposure must be in [0, 1]")
        if self.timestamp_resolution not in _RESOLUTION_QUANTUM_MS:
            raise ValueError(
                f"unknown timestamp resolution {self.timestamp_resolution!r}"
            )

    def quantize(self, time_ms: float) -> float:
        quantum = _RESOLUTION_QUANTUM_MS[self.timestamp_resolution]
        return round(time_ms / quantum) * quantum


class QlogWriter:
    """Collects events for one endpoint ("vantage point" in qlog terms)."""

    def __init__(
        self,
        vantage_point: str,
        policy: Optional[ExposurePolicy] = None,
        rng: Optional[random.Random] = None,
        record_events: bool = True,
    ):
        self.vantage_point = vantage_point
        self.policy = policy if policy is not None else ExposurePolicy()
        self._rng = rng if rng is not None else random.Random(0)
        #: When False the writer keeps drawing its exposure-policy rng
        #: samples (so connection behavior stays bit-identical with or
        #: without qlog retention) but stores no events — the "stats"
        #: artifact level of the experiment runtime.
        self.record_events = record_events
        self.events: List[QlogEvent] = []
        self._suppressed_metrics = 0
        self._last_metrics_key: Optional[tuple] = None

    def log_packet(self, event: PacketEvent) -> None:
        if not self.record_events:
            return
        self.events.append(self._stamp(event))

    def log_metrics(self, event: MetricsUpdated) -> None:
        """Log a recovery:metrics_updated event, subject to policy.

        Consecutive duplicates are collapsed the way the paper's
        post-processing does ("we remove consecutive duplicates",
        Appendix E) — quantized values that repeat are dropped.

        The exposure draw happens before the ``record_events`` check:
        the rng is shared with the endpoint, so a non-recording writer
        must consume exactly the same samples as a recording one.
        """
        if self._rng.random() > self.policy.metrics_exposure:
            self._suppressed_metrics += 1
            return
        if not self.record_events:
            return
        if not self.policy.logs_rtt_variance:
            event = MetricsUpdated(
                time_ms=event.time_ms,
                category=event.category,
                name=event.name,
                smoothed_rtt_ms=event.smoothed_rtt_ms,
                rtt_variance_ms=None,
                latest_rtt_ms=event.latest_rtt_ms,
                min_rtt_ms=event.min_rtt_ms,
                pto_count=event.pto_count,
            )
        key = (event.smoothed_rtt_ms, event.rtt_variance_ms)
        if key == self._last_metrics_key:
            return
        self._last_metrics_key = key
        self.events.append(self._stamp(event))

    def _stamp(self, event: QlogEvent) -> QlogEvent:
        quantized = self.policy.quantize(event.time_ms)
        if quantized == event.time_ms:
            return event
        if isinstance(event, PacketEvent):
            return PacketEvent(
                time_ms=quantized, category=event.category, name=event.name,
                data=event.data, packet_type=event.packet_type,
                packet_number=event.packet_number, space=event.space,
                size=event.size, ack_eliciting=event.ack_eliciting,
                frames=event.frames, newly_acked=event.newly_acked,
            )
        if isinstance(event, MetricsUpdated):
            return MetricsUpdated(
                time_ms=quantized, category=event.category, name=event.name,
                data=event.data, smoothed_rtt_ms=event.smoothed_rtt_ms,
                rtt_variance_ms=event.rtt_variance_ms,
                latest_rtt_ms=event.latest_rtt_ms, min_rtt_ms=event.min_rtt_ms,
                pto_count=event.pto_count,
            )
        return QlogEvent(
            time_ms=quantized, category=event.category, name=event.name,
            data=event.data,
        )

    @property
    def suppressed_metrics(self) -> int:
        return self._suppressed_metrics

    def of_type(self, qualified_name: str) -> List[QlogEvent]:
        return [e for e in self.events if e.qualified_name == qualified_name]

    def to_json(self) -> str:
        """Serialize in a qlog-like JSON shape."""
        return json.dumps(
            {
                "qlog_version": "0.4",
                "title": self.vantage_point,
                "traces": [
                    {
                        "vantage_point": {"name": self.vantage_point},
                        "events": [e.to_dict() for e in self.events],
                    }
                ],
            }
        )
