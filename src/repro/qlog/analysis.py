"""Helpers for analyzing qlog event streams.

These mirror the paper's post-processing: counting metric updates
versus theoretically possible RTT samples (Figure 11), and deriving
the first PTO from logged metrics (Figure 16).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.qlog.events import MetricsUpdated, PacketEvent, QlogEvent


def count_metric_updates(events: List[QlogEvent]) -> int:
    """Number of logged ``recovery:metrics_updated`` events."""
    return sum(1 for e in events if isinstance(e, MetricsUpdated))


def count_new_ack_packets(events: List[QlogEvent]) -> int:
    """Packets received that newly acknowledged at least one packet —
    the theoretical maximum number of RTT samples (Figure 11)."""
    return sum(
        1
        for e in events
        if isinstance(e, PacketEvent)
        and e.name == "packet_received"
        and e.newly_acked
    )


def metric_series(events: List[QlogEvent]) -> List[MetricsUpdated]:
    """All metric updates in time order."""
    series = [e for e in events if isinstance(e, MetricsUpdated)]
    series.sort(key=lambda e: e.time_ms)
    return series


def first_smoothed_rtt(events: List[QlogEvent]) -> Optional[Tuple[float, Optional[float]]]:
    """First logged ``(smoothed_rtt, rtt_variance)``; variance may be
    ``None`` for implementations that do not expose it."""
    for event in metric_series(events):
        if event.smoothed_rtt_ms is not None:
            return (event.smoothed_rtt_ms, event.rtt_variance_ms)
    return None


def first_pto_from_qlog(
    events: List[QlogEvent],
    granularity_ms: float = 1.0,
    fallback_variance_factor: float = 0.5,
) -> Optional[float]:
    """First PTO derivable from the qlog.

    ``PTO = srtt + max(4 * rttvar, granularity)``. When the
    implementation does not log RTT variance the paper calculates it
    "from the sent and received packets instead"; with a single sample
    that reconstruction is ``sample / 2``, which
    ``fallback_variance_factor`` encodes.
    """
    first = first_smoothed_rtt(events)
    if first is None:
        return None
    srtt, rttvar = first
    if rttvar is None:
        rttvar = srtt * fallback_variance_factor
    return srtt + max(4.0 * rttvar, granularity_ms)
