"""The profile registry: eight clients, sixteen servers.

Client parameters come from the paper's Table 4 (default PTO, second
client flight coalescing), §4 (quirks), and Appendix E (RTT formula
and qlog exposure). The ``coalesced_processing_penalty_ms`` values are
fitted so the WFC-vs-IACK first-RTT-sample difference — and hence the
Figure 7 TTFB improvements of 10..28 ms — match the paper's medians
(improvement ≈ 3 x (server crypto time + client penalty)).

Server profiles encode Table 3: the acknowledgment delay reported in
the first Initial- and Handshake-space ACKs, with msquic sending no
Initial/Handshake ACKs and 11 of 16 stacks sending no Handshake ACK.
"""

from __future__ import annotations

from typing import Dict

from repro.impls.profile import ImplProfile, SecondFlightVariant

# ---------------------------------------------------------------------------
# Client profiles (paper Table 4, §4.1/§4.2, Appendix E/F)
# ---------------------------------------------------------------------------

AIOQUIC = ImplProfile(
    name="aioquic",
    default_pto_ms=200.0,
    second_flight_indices=(2, 3, 4),
    rtt_variant="aioquic",  # "aioquic uses a different formula" (App. E)
    flow_update_interval_bytes=12 * 1024,
    coalesced_processing_penalty_ms=2.7,
    qlog_metrics_exposure=1.0,
    qlog_timestamp_resolution="ms",
)

GO_X_NET = ImplProfile(
    name="go-x-net",
    default_pto_ms=999.0,
    second_flight_indices=(2, 3, 4),
    supports_http3=False,  # "go-x-net ... does not implement HTTP/3" (§3)
    misinit_srtt_probability=0.2,  # "partially initializes ... incorrectly"
    misinit_srtt_ms=90.0,
    coalesced_processing_penalty_ms=6.5,
    penalty_jitter_ms=5.5,  # "median 0.1 ms to 12.7 ms" variation (§4.1)
    flow_update_interval_bytes=16 * 1024,
    qlog_metrics_exposure=1.0,
)

MVFST = ImplProfile(
    name="mvfst",
    default_pto_ms=100.0,
    second_flight_indices=(2, 3, 4),
    anti_deadlock_probe_from_sent_time=True,  # no probes on IACK (§4.1)
    coalesced_processing_penalty_ms=2.4,
    flow_update_interval_bytes=5 * 1024,
    qlog_metrics_exposure=1.0,
    qlog_logs_rtt_variance=False,  # Appendix E
)

NEQO = ImplProfile(
    name="neqo",
    default_pto_ms=300.0,
    second_flight_indices=(2, 3),
    coalesced_processing_penalty_ms=3.0,
    flow_update_interval_bytes=36 * 1024,
    qlog_metrics_exposure=0.5,  # exposes a smaller fraction (App. E)
    qlog_logs_rtt_variance=False,
)

NGTCP2 = ImplProfile(
    name="ngtcp2",
    default_pto_ms=300.0,
    second_flight_indices=(2, 3, 4),
    coalesced_processing_penalty_ms=3.0,
    flow_update_interval_bytes=24 * 1024,
    qlog_metrics_exposure=0.5,
)

PICOQUIC = ImplProfile(
    name="picoquic",
    default_pto_ms=250.0,
    second_flight_indices=(2, 3, 4, 5),
    use_initial_ack_rtt_sample=False,  # "ignores the lower RTT" (§4.2)
    anti_deadlock_probe_from_sent_time=True,  # no probes on IACK (§4.1)
    coalesced_processing_penalty_ms=3.0,
    flow_update_interval_bytes=50 * 1024,
    qlog_metrics_exposure=0.5,
    qlog_logs_rtt_variance=False,
    qlog_timestamp_resolution="us",
)

QUIC_GO = ImplProfile(
    name="quic-go",
    default_pto_ms=200.0,
    second_flight_indices=(2, 3, 4),
    coalesced_processing_penalty_ms=2.7,
    flow_update_interval_bytes=16 * 1024,
    qlog_metrics_exposure=0.5,
)

QUICHE = ImplProfile(
    name="quiche",
    default_pto_ms=999.0,
    second_flight_indices=(2,),
    second_flight_variants=(
        SecondFlightVariant(probability=0.7, datagrams=1),
        SecondFlightVariant(probability=0.3, datagrams=2),
    ),
    drops_ping_ack_coalesced=True,  # §4.1 Figure 5 discussion
    aborts_on_duplicate_cid_retirement=True,  # §4.2 (HTTP/1.1 only)
    coalesced_processing_penalty_ms=6.7,
    flow_update_interval_bytes=8 * 1024,
    qlog_metrics_exposure=1.0,
)

CLIENT_PROFILES: Dict[str, ImplProfile] = {
    p.name: p
    for p in (AIOQUIC, GO_X_NET, MVFST, NEQO, NGTCP2, PICOQUIC, QUIC_GO, QUICHE)
}

#: The stable ordering used by the paper's figures.
CLIENT_NAMES = tuple(sorted(CLIENT_PROFILES))


def client_profile(name: str) -> ImplProfile:
    """Look up a client profile by implementation name."""
    try:
        return CLIENT_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown client implementation {name!r}; "
            f"known: {', '.join(sorted(CLIENT_PROFILES))}"
        ) from None


# ---------------------------------------------------------------------------
# Server profiles (paper Table 3, Appendix D)
# ---------------------------------------------------------------------------

def _server(
    name: str,
    initial_ack_delay_ms,
    handshake_ack_delay_ms,
    sends_initial_ack: bool = True,
    default_pto_ms: float = 200.0,
    **kwargs,
) -> ImplProfile:
    return ImplProfile(
        name=name,
        default_pto_ms=default_pto_ms,
        initial_ack_delay_ms=initial_ack_delay_ms or 0.0,
        handshake_ack_delay_ms=handshake_ack_delay_ms,
        sends_initial_ack=sends_initial_ack,
        **kwargs,
    )


#: The quic-go server "modified to support IACK" used for all testbed
#: experiments (§3); its 200 ms default PTO drives the Figure 6 result.
QUIC_GO_SERVER = _server(
    "quic-go", initial_ack_delay_ms=0.0, handshake_ack_delay_ms=None,
    default_pto_ms=200.0,
)

#: Table 3 of the paper: first ACK delay [ms] in the Initial and
#: Handshake packet number spaces, per server implementation. ``None``
#: for the Handshake column means no Handshake ACK was observed.
SERVER_PROFILES: Dict[str, ImplProfile] = {
    p.name: p
    for p in (
        _server("aioquic", 3.3, None),
        _server("go-x-net", 0.0, None),
        _server("haproxy", 1.0, 0.0),
        _server("kwik", 0.0, None),
        _server("lsquic", 1.2, 0.2),
        _server("msquic", 0.0, None, sends_initial_ack=False),
        _server("mvfst", 0.8, 0.2),
        _server("neqo", 0.0, 0.0),
        _server("nginx", 0.0, None),
        _server("ngtcp2", 0.0, None),
        _server("picoquic", 0.8, None),
        QUIC_GO_SERVER,
        _server("quiche", 1.4, None),
        _server("quinn", 0.4, None),
        _server("s2n-quic", 14.4, None),  # "exceeds the RTT of the connection"
        _server("xquic", 1.2, 0.5),
    )
}


def server_profile(name: str) -> ImplProfile:
    """Look up a server profile by implementation name."""
    try:
        return SERVER_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown server implementation {name!r}; "
            f"known: {', '.join(sorted(SERVER_PROFILES))}"
        ) from None
