"""The :class:`ImplProfile` dataclass — one QUIC stack's parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.qlog.writer import ExposurePolicy


@dataclass(frozen=True)
class SecondFlightVariant:
    """One way an implementation coalesces its second client flight.

    ``probability`` selects among variants per run (quiche sometimes
    sends two datagrams instead of one, Appendix F); ``datagrams`` is
    the number of UDP datagrams the flight spans.
    """

    probability: float
    datagrams: int

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("variant probability must be in (0, 1]")
        if not 1 <= self.datagrams <= 4:
            raise ValueError("second flight spans 1..4 datagrams")


@dataclass(frozen=True)
class ImplProfile:
    """Behavioral parameters of one QUIC implementation.

    Client-relevant and server-relevant fields coexist; the connection
    classes read what applies to their role.
    """

    name: str
    #: Initial/default PTO before any RTT sample (paper Table 4).
    default_pto_ms: float
    #: Number of UDP datagrams the second client flight spans, as
    #: 1-based datagram indices sent by the client (paper Table 4;
    #: datagram 1 is the ClientHello).
    second_flight_indices: Tuple[int, ...] = (2, 3, 4)
    #: Probabilistic coalescing variants; when set, overrides
    #: ``second_flight_indices`` count per run (quiche, Appendix F).
    second_flight_variants: Tuple[SecondFlightVariant, ...] = ()
    supports_http3: bool = True
    max_ack_delay_ms: float = 25.0

    # -- RTT estimation and PTO quirks (Appendix E, §4) ---------------
    rtt_variant: str = "standard"  # "aioquic" for aioquic
    use_initial_ack_rtt_sample: bool = True  # False: picoquic
    anti_deadlock_probe_from_sent_time: bool = False  # True: mvfst, picoquic
    misinit_srtt_probability: float = 0.0  # go-x-net
    misinit_srtt_ms: float = 90.0

    # -- processing-time model (§4.1 "QUIC stack delays") --------------
    #: Extra client processing before an RTT sample is taken from a
    #: datagram that coalesces ACK with TLS crypto (vs a bare ACK).
    coalesced_processing_penalty_ms: float = 3.0
    #: Uniform jitter half-width applied to the penalty per datagram.
    penalty_jitter_ms: float = 0.5
    #: Base processing delay for a non-crypto datagram.
    base_processing_ms: float = 0.05

    # -- quiche quirks (§4.1, §4.2, Appendix F) ------------------------
    #: Drop a coalesced datagram whose Initial ACK (newly) acknowledges
    #: one of our PING probes ("drops replies to PING frames as
    #: invalid together with coalesced packets").
    drops_ping_ack_coalesced: bool = False
    #: Abort when the same connection ID is retired twice (observed
    #: for quiche over HTTP/1.1 only).
    aborts_on_duplicate_cid_retirement: bool = False

    # -- server-side fields --------------------------------------------
    #: ACK delay reported in the first Initial ACK (paper Table 3).
    initial_ack_delay_ms: float = 0.0
    #: ACK delay in the Handshake space; None = the implementation
    #: sends no acknowledgment in that space (11 of 16 stacks).
    handshake_ack_delay_ms: Optional[float] = 0.0
    #: msquic sends no Initial/Handshake ACKs at all.
    sends_initial_ack: bool = True
    #: Server processing time to compile ServerHello/cert/signature
    #: ("signature calculation is the single most CPU consuming
    #: function", §4.1).
    crypto_processing_ms: float = 1.0
    crypto_processing_jitter_ms: float = 0.3
    #: Processing time to emit an instant ACK (Initial keys only).
    iack_processing_ms: float = 0.1
    #: Whether the server pads its instant ACK to probe the path MTU,
    #: as Cloudflare does (§5) — consumes amplification budget.
    pads_instant_ack: bool = False

    # -- qlog exposure (Appendix E) -------------------------------------
    qlog_metrics_exposure: float = 1.0
    qlog_logs_rtt_variance: bool = True
    qlog_timestamp_resolution: str = "us"

    # -- ack policy -----------------------------------------------------
    #: Acknowledge every n-th ack-eliciting packet in the application
    #: space (2 is the RFC 9000 §13.2.2 recommendation).
    ack_every_n: int = 2
    #: Send PING keep-alives during long transfers, which creates
    #: extra RTT samples (Figure 11 discussion).
    sends_keepalive_pings: bool = False
    #: Send a MAX_DATA flow-control update every this many received
    #: bytes. These ack-eliciting updates are a downloading client's
    #: main RTT-sample source; implementations differ widely in update
    #: frequency, which spreads the Figure 11 sample counts.
    flow_update_interval_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.default_pto_ms <= 0:
            raise ValueError("default PTO must be positive")
        if not self.second_flight_indices:
            raise ValueError("second flight needs at least one datagram")
        if list(self.second_flight_indices) != sorted(self.second_flight_indices):
            raise ValueError("second flight indices must be sorted")
        if self.second_flight_variants:
            total = sum(v.probability for v in self.second_flight_variants)
            if not 0.999 <= total <= 1.001:
                raise ValueError("variant probabilities must sum to 1")
        if self.ack_every_n < 1:
            raise ValueError("ack_every_n must be >= 1")

    @property
    def second_flight_datagram_count(self) -> int:
        return len(self.second_flight_indices)

    def exposure_policy(self) -> ExposurePolicy:
        return ExposurePolicy(
            metrics_exposure=self.qlog_metrics_exposure,
            logs_rtt_variance=self.qlog_logs_rtt_variance,
            timestamp_resolution=self.qlog_timestamp_resolution,
        )
