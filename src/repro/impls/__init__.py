"""Implementation profiles for the QUIC stacks the paper studies.

The paper's testbed runs eight client implementations (aioquic,
go-x-net, mvfst, neqo, ngtcp2, picoquic, quic-go, quiche) against a
quic-go server modified to support instant ACK, and its Appendix D
additionally surveys the first-ACK delay of 16 server stacks
(Table 3). :class:`~repro.impls.profile.ImplProfile` captures every
behavioral parameter the paper attributes to a specific stack:
default PTO and second-flight coalescing (Table 4), RTT formula and
qlog exposure differences (Appendix E), and the quirks of §4
(go-x-net misinitialization, mvfst/picoquic probe suppression, quiche
PING-reply and CID-retirement behavior).
"""

from repro.impls.profile import ImplProfile, SecondFlightVariant
from repro.impls.registry import (
    CLIENT_PROFILES,
    SERVER_PROFILES,
    client_profile,
    server_profile,
    QUIC_GO_SERVER,
)

__all__ = [
    "ImplProfile",
    "SecondFlightVariant",
    "CLIENT_PROFILES",
    "SERVER_PROFILES",
    "client_profile",
    "server_profile",
    "QUIC_GO_SERVER",
]
