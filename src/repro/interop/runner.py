"""The scenario runner: one emulated QUIC connection per run.

A :class:`Scenario` is the full parameterization of one testbed
condition (client implementation, server mode, HTTP version, RTT,
Δt, certificate, file size, loss patterns); :class:`Runner` executes
it for any number of repetitions with distinct seeds and collects
:class:`RunResult` artifacts (stats, qlogs, packet trace).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.http import semantics_for
from repro.http.base import RequestSpec
from repro.impls.profile import ImplProfile
from repro.impls.registry import QUIC_GO_SERVER, client_profile
from repro.qlog.writer import QlogWriter
from repro.quic.certs import Certificate, SMALL_CERTIFICATE
from repro.quic.client import ClientConnection
from repro.quic.connection import ConnectionStats
from repro.quic.profiles import get_recovery_profile
from repro.quic.server import ServerConfig, ServerConnection, ServerMode
from repro.sim.draws import BehaviorDraws
from repro.sim.engine import EventLoop
from repro.sim.link import DEFAULT_BANDWIDTH_BPS
from repro.sim.loss import LossPattern
from repro.sim.network import Network
from repro.sim.trace import Tracer

#: 10 KB and 10 MB transfer sizes used throughout the paper (§3).
SIZE_10KB = 10 * 1024
SIZE_10MB = 10 * 1024 * 1024


@dataclass(frozen=True)
class Scenario:
    """One testbed condition."""

    client: str = "quic-go"
    mode: ServerMode = ServerMode.WFC
    http: str = "h1"
    rtt_ms: float = 9.0
    delta_t_ms: float = 0.0
    certificate: Certificate = field(default_factory=lambda: SMALL_CERTIFICATE)
    response_size: int = SIZE_10KB
    bandwidth_bps: Optional[float] = DEFAULT_BANDWIDTH_BPS
    client_to_server_loss: Optional[LossPattern] = None
    server_to_client_loss: Optional[LossPattern] = None
    pad_instant_ack: bool = False
    timeout_ms: float = 60_000.0
    #: Named recovery-lab strategy bundle (see
    #: :mod:`repro.quic.profiles`); carried as a string so the scenario
    #: stays hashable and cheap to pickle. ``"default"`` reproduces the
    #: pre-lab stack byte-identically.
    recovery_profile: str = "default"

    def with_mode(self, mode: ServerMode) -> "Scenario":
        return replace(self, mode=mode)

    def describe(self) -> str:
        loss = ""
        if self.client_to_server_loss or self.server_to_client_loss:
            loss = (
                f" loss(c2s={self.client_to_server_loss!r},"
                f" s2c={self.server_to_client_loss!r})"
            )
        profile = ""
        if self.recovery_profile != "default":
            profile = f" profile={self.recovery_profile}"
        return (
            f"{self.client}/{self.http} {self.mode.name} rtt={self.rtt_ms}ms "
            f"dt={self.delta_t_ms}ms cert={self.certificate.name} "
            f"size={self.response_size}B{loss}{profile}"
        )


@dataclass
class RunResult:
    """Artifacts of one emulated connection."""

    scenario: Scenario
    seed: int
    client_stats: ConnectionStats
    server_stats: ConnectionStats
    client_qlog: QlogWriter
    server_qlog: QlogWriter
    tracer: Tracer
    client: ClientConnection
    server: ServerConnection
    duration_ms: float

    @property
    def ttfb_ms(self) -> Optional[float]:
        return self.client_stats.ttfb_relative_ms

    @property
    def response_ttfb_ms(self) -> Optional[float]:
        """First payload byte on the request stream — the metric of
        the loss-scenario figures ("the first payload byte after the
        loss event", Appendix F)."""
        return self.client_stats.response_ttfb_relative_ms

    @property
    def completed(self) -> bool:
        return self.client_stats.completed

    @property
    def first_pto_ms(self) -> Optional[float]:
        return self.client_stats.first_pto_ms


class Runner:
    """Executes scenarios on the discrete-event simulator."""

    def __init__(self, base_seed: int = 0):
        self.base_seed = base_seed

    def run_once(
        self,
        scenario: Scenario,
        seed: Optional[int] = None,
        *,
        capture_trace: bool = True,
        record_qlog: bool = True,
        draws: Optional[Tuple[BehaviorDraws, BehaviorDraws]] = None,
    ) -> RunResult:
        """Run a single connection and return its artifacts.

        ``capture_trace`` / ``record_qlog`` select how much the run
        retains: with both off, only :class:`ConnectionStats` survive —
        connection behavior (and therefore the stats) is bit-identical
        either way, since the qlog writers keep consuming their
        exposure-policy rng draws without storing events.

        ``draws`` overrides the ``(client, server)`` behavior-draw
        sources — the batch engine's skeleton runs pin them to probe
        values via :class:`~repro.sim.draws.ForcedDraws`.
        """
        seed = self.base_seed if seed is None else seed
        loop = EventLoop()
        tracer = Tracer(capture=capture_trace)
        profile = client_profile(scenario.client)
        # Both endpoints run the scenario's recovery-lab profile: the
        # sweeps compare whole-path strategy changes, not asymmetric
        # deployments.
        rprofile = get_recovery_profile(scenario.recovery_profile)
        http_client = semantics_for(scenario.http)
        http_server = semantics_for(scenario.http)
        # Loss patterns are deep-copied per run: stateful patterns
        # (RandomLoss) would otherwise be mutated through the shared
        # Scenario, coupling repetitions and racing under concurrent
        # execution of the same scenario.
        c2s_loss = copy.deepcopy(scenario.client_to_server_loss)
        if c2s_loss is not None:
            c2s_loss.reset()
        s2c_loss = copy.deepcopy(scenario.server_to_client_loss)
        if s2c_loss is not None:
            s2c_loss.reset()
        network = Network.for_rtt(
            loop,
            rtt_ms=scenario.rtt_ms,
            bandwidth_bps=scenario.bandwidth_bps,
            client_to_server_loss=c2s_loss,
            server_to_client_loss=s2c_loss,
            tracer=tracer,
        )
        # String seeds are hashed (SHA-512) by random.Random, giving
        # well-mixed first draws even for sequential repetition seeds.
        # The shared per-role rng feeds only the qlog exposure draws;
        # behavior draws come from purpose-derived streams so their
        # values are pure functions of (role, seed, purpose).
        rng_client = random.Random(f"client:{seed}")
        rng_server = random.Random(f"server:{seed}")
        if draws is not None:
            draws_client, draws_server = draws
        else:
            draws_client = BehaviorDraws("client", seed)
            draws_server = BehaviorDraws("server", seed)
        request = RequestSpec(response_size=scenario.response_size)
        client = ClientConnection(
            loop,
            profile,
            http_client,
            request=request,
            rng=rng_client,
            qlog=QlogWriter(
                "client", profile.exposure_policy(), rng_client,
                record_events=record_qlog,
            ),
            name="client",
            draws=draws_client,
            recovery_profile=rprofile,
        )
        server_config = ServerConfig(
            mode=scenario.mode,
            delta_t_ms=scenario.delta_t_ms,
            certificate=scenario.certificate,
            pad_instant_ack=scenario.pad_instant_ack,
        )
        server = ServerConnection(
            loop,
            QUIC_GO_SERVER,
            http_server,
            config=server_config,
            rng=rng_server,
            qlog=QlogWriter(
                "server", QUIC_GO_SERVER.exposure_policy(), rng_server,
                record_events=record_qlog,
            ),
            name="server",
            draws=draws_server,
            recovery_profile=rprofile,
        )
        server.set_request_spec(request)
        client.attach_transport(
            lambda dgram, size: network.send_from(network.client, dgram, size)
        )
        server.attach_transport(
            lambda dgram, size: network.send_from(network.server, dgram, size)
        )
        network.client.attach(client.on_datagram)
        network.server.attach(server.on_datagram)
        client.start()
        loop.run(until=scenario.timeout_ms)
        if not client.stats.completed and client.stats.aborted is None:
            client.stats.aborted = "timeout"
        return RunResult(
            scenario=scenario,
            seed=seed,
            client_stats=client.snapshot_stats(),
            server_stats=server.snapshot_stats(),
            client_qlog=client.qlog,
            server_qlog=server.qlog,
            tracer=tracer,
            client=client,
            server=server,
            duration_ms=loop.now,
        )

    def run_repetitions(
        self, scenario: Scenario, repetitions: int = 100
    ) -> List[RunResult]:
        """Run a scenario ``repetitions`` times with distinct seeds —
        the paper repeats every test 100 times (§3)."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        return [
            self.run_once(scenario, seed=self.base_seed + i)
            for i in range(repetitions)
        ]


def profile_for(scenario: Scenario) -> ImplProfile:
    """The client profile a scenario resolves to."""
    return client_profile(scenario.client)
