"""QUIC-Interop-Runner-style emulation harness.

The paper "emulate[s] network conditions using the QUIC Interop Runner
(QIR), a container-based framework for interoperability testing"
(§3): a client implementation and a server joined by an emulated path,
with packet captures and qlog collected from both sides, 100
repetitions per condition. :class:`~repro.interop.runner.Runner`
reproduces that harness on the discrete-event simulator.
"""

from repro.interop.runner import RunResult, Runner, Scenario
from repro.interop.scenarios import (
    first_server_flight_tail_loss,
    second_client_flight_loss,
)

__all__ = [
    "Runner",
    "RunResult",
    "Scenario",
    "first_server_flight_tail_loss",
    "second_client_flight_loss",
]
