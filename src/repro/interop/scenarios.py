"""Loss scenario builders matching the paper's methodology.

"Unless stated otherwise, we match lost datagrams to their QUIC
content and compare equal information loss" (§3): because an IACK
server emits one extra (standalone ACK) datagram, the server-side loss
indices shift by one between modes, and because clients coalesce their
second flight differently, the client-side indices are per-profile
(Table 4).
"""

from __future__ import annotations

from repro.impls.registry import client_profile
from repro.quic.server import ServerMode
from repro.sim.loss import IndexedLoss


def first_server_flight_tail_loss(mode: ServerMode) -> IndexedLoss:
    """Figure 6 / 12: lose the first server flight except its first
    datagram — "loss of packets 2 and 3 (IACK) and packet 2 (WFC) sent
    by the server".

    With the 1,212 B certificate the flight spans two datagrams; the
    IACK adds a standalone ACK datagram in front, so equal-information
    loss drops indices {2, 3} for IACK and {2} for WFC.
    """
    if mode is ServerMode.IACK:
        return IndexedLoss({2, 3})
    return IndexedLoss({2})


def second_client_flight_loss(client: str) -> IndexedLoss:
    """Figure 7 / 13: lose the entire second client flight.

    The flight spans implementation-specific datagram indices
    (Table 4), e.g. {2,3,4} for quic-go but only {2} for quiche and
    {2,...,5} for picoquic. The mapping is static: if the client sends
    extra datagrams first (e.g. PTO probes at high RTT), those absorb
    the drops instead — a property of the paper's methodology that
    Appendix F discusses and this reproduction inherits.
    """
    profile = client_profile(client)
    return IndexedLoss(profile.second_flight_indices)
