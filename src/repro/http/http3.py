"""HTTP/3 (RFC 9114) at stream granularity.

Client: a control stream (stream 2) carrying SETTINGS and a request
stream (stream 0) carrying a QPACK-encoded HEADERS frame. Server: a
control stream (stream 3) whose SETTINGS go out *immediately after
the handshake completes* — the reason HTTP/3 TTFB is one RTT lower
than HTTP/1.1 in the paper's Figure 5 — and the response (HEADERS +
DATA) on stream 0.
"""

from __future__ import annotations

from typing import List

from repro.http.base import HttpSemantics, RequestSpec, StreamWrite

#: Stream-type byte + SETTINGS frame with a few identifiers.
SETTINGS_SIZE = 12
#: QPACK-encoded request HEADERS frame (typical compact GET).
REQUEST_HEADERS_SIZE = 58
#: Response HEADERS frame + DATA frame header.
RESPONSE_FRAMING_OVERHEAD = 32


class Http3Semantics(HttpSemantics):
    name = "http/3"

    def client_writes(self, request: RequestSpec) -> List[StreamWrite]:
        return [
            StreamWrite(stream_id=2, size=SETTINGS_SIZE, fin=False, label="h3-settings"),
            StreamWrite(
                stream_id=0,
                size=REQUEST_HEADERS_SIZE,
                fin=True,
                label="h3-request",
            ),
        ]

    def server_handshake_writes(self) -> List[StreamWrite]:
        return [
            StreamWrite(stream_id=3, size=SETTINGS_SIZE, fin=False, label="h3-settings"),
        ]

    def server_response_writes(self, request: RequestSpec) -> List[StreamWrite]:
        return [
            StreamWrite(
                stream_id=0,
                size=request.response_size + RESPONSE_FRAMING_OVERHEAD,
                fin=True,
                label="h3-response",
            )
        ]
