"""HTTP/1.1-over-QUIC (hq-interop style, as used by the QUIC Interop
Runner): plain request bytes on stream 0, raw response bytes back on
the same stream. Nothing is sent by the server until the request
arrives — hence the extra RTT relative to HTTP/3 in Figure 5."""

from __future__ import annotations

from typing import List

from repro.http.base import HttpSemantics, RequestSpec, StreamWrite


class Http1Semantics(HttpSemantics):
    name = "http/1.1"

    def client_writes(self, request: RequestSpec) -> List[StreamWrite]:
        request_line = f"GET {request.path}\r\n"
        return [
            StreamWrite(
                stream_id=0,
                size=len(request_line.encode()),
                fin=True,
                label="http1-request",
            )
        ]

    def server_handshake_writes(self) -> List[StreamWrite]:
        return []

    def server_response_writes(self, request: RequestSpec) -> List[StreamWrite]:
        return [
            StreamWrite(
                stream_id=0,
                size=request.response_size,
                fin=True,
                label="http1-response",
            )
        ]
