"""Common interface for the HTTP mappings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class RequestSpec:
    """What the client asks for: a resource of a given size."""

    path: str = "/file"
    response_size: int = 10 * 1024

    def __post_init__(self) -> None:
        if self.response_size <= 0:
            raise ValueError("response size must be positive")


@dataclass(frozen=True)
class StreamWrite:
    """One stream write: ``(stream_id, size, fin, label)``."""

    stream_id: int
    size: int
    fin: bool
    label: str


class HttpSemantics:
    """How requests/responses map onto QUIC streams."""

    name: str = "http"

    def client_writes(self, request: RequestSpec) -> List[StreamWrite]:
        """Stream writes the client performs right after the handshake."""
        raise NotImplementedError

    def server_handshake_writes(self) -> List[StreamWrite]:
        """Stream writes the server performs the moment its handshake
        completes — before any request arrives."""
        raise NotImplementedError

    def server_response_writes(self, request: RequestSpec) -> List[StreamWrite]:
        """Stream writes carrying the response."""
        raise NotImplementedError

    @property
    def request_stream_id(self) -> int:
        return 0
