"""HTTP semantics over QUIC streams.

The paper requests files via HTTP/1.1 and HTTP/3 (§3) and observes
that "HTTP/3 generally has a lower TTFB because the first STREAM frame
received from the server is the Control Stream with the SETTINGS
frame, which is sent by the server immediately after the handshake
completes. Compared to HTTP/1.1, this is one RTT faster" (Figure 5).
These classes encode exactly that difference: HTTP/3 servers emit
SETTINGS on their control stream at handshake completion; HTTP/1.1
servers send nothing until the request arrives.
"""

from repro.http.base import HttpSemantics, RequestSpec
from repro.http.http1 import Http1Semantics
from repro.http.http3 import Http3Semantics

__all__ = ["HttpSemantics", "RequestSpec", "Http1Semantics", "Http3Semantics"]


def semantics_for(version: str) -> HttpSemantics:
    """Factory: ``"h1"``/``"http/1.1"`` or ``"h3"``/``"http/3"``."""
    normalized = version.lower()
    if normalized in ("h1", "http/1.1", "http1", "hq-interop"):
        return Http1Semantics()
    if normalized in ("h3", "http/3", "http3"):
        return Http3Semantics()
    raise ValueError(f"unknown HTTP version {version!r}")
