"""Numerical PTO-evolution model (paper Figure 2).

The Probe Timeout after the first RTT sample is

    PTO = smoothed_rtt + max(4 * rttvar, granularity) [+ max_ack_delay]

with ``smoothed_rtt = sample`` and ``rttvar = sample / 2`` at
initialization, i.e. the first PTO is ``3 x first_sample``. A
wait-for-certificate server inflates the first sample by Δt, so the
first PTO is inflated by **3 x Δt** — "Probe Timeouts (PTOs) are
improved by 3x the delay between frontend server and certificate
store" (§1). Subsequent samples pull the inflated estimate back down
through the EWMAs; Figure 2 plots that convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.quic.recovery import GRANULARITY_MS, RttEstimator


def first_pto_reduction(rtt_ms: float, delta_t_ms: float) -> float:
    """First-PTO reduction [ms] of IACK over WFC: ``3 x Δt``.

    IACK first sample ≈ RTT → PTO = 3 RTT; WFC first sample ≈
    RTT + Δt → PTO = 3 (RTT + Δt).
    """
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    if delta_t_ms < 0:
        raise ValueError("Δt cannot be negative")
    return 3.0 * delta_t_ms


def first_pto_reduction_rtt_units(rtt_ms: float, delta_t_ms: float) -> float:
    """Figure 4's y-axis: the first-PTO reduction relative to the RTT.

    "Relative to the RTT, lower latency connections profit more from
    PTO improvement with IACK."
    """
    return first_pto_reduction(rtt_ms, delta_t_ms) / rtt_ms


@dataclass
class PtoEvolution:
    """One computed PTO trajectory."""

    rtt_ms: float
    delta_t_ms: float
    #: PTO value after the k-th packet with new ACKs, k = 1..n.
    pto_ms: List[float]

    @property
    def first_pto_ms(self) -> float:
        return self.pto_ms[0]

    def convergence_index(self, tolerance_ms: float = 0.5) -> Optional[int]:
        """First 1-based index where the PTO is within ``tolerance_ms``
        of the final (converged) value, or None."""
        target = self.pto_ms[-1]
        for i, value in enumerate(self.pto_ms):
            if abs(value - target) <= tolerance_ms:
                return i + 1
        return None


class PtoModel:
    """Computes PTO evolution under the Figure 2 assumptions: "all
    subsequent packets arrive exactly after one RTT and the instant
    ACK is delivered Δt earlier"."""

    def __init__(self, granularity_ms: float = GRANULARITY_MS):
        self.granularity_ms = granularity_ms

    def evolution(
        self,
        rtt_ms: float,
        first_sample_extra_ms: float,
        n_samples: int = 50,
    ) -> PtoEvolution:
        """PTO after each of ``n_samples`` RTT samples, where only the
        first sample carries the extra delay (WFC) — pass 0 extra for
        the instant ACK trajectory."""
        if n_samples < 1:
            raise ValueError("need at least one sample")
        estimator = RttEstimator()
        values: List[float] = []
        for index in range(n_samples):
            sample = rtt_ms + (first_sample_extra_ms if index == 0 else 0.0)
            estimator.update(sample)
            assert estimator.smoothed_rtt is not None
            assert estimator.rttvar is not None
            values.append(
                estimator.smoothed_rtt
                + max(4.0 * estimator.rttvar, self.granularity_ms)
            )
        return PtoEvolution(
            rtt_ms=rtt_ms, delta_t_ms=first_sample_extra_ms, pto_ms=values
        )

    def figure2(
        self,
        rtt_values_ms=(9.0, 25.0),
        delta_t_ms: float = 4.0,
        n_samples: int = 50,
    ):
        """The two RTT curves of Figure 2, WFC and IACK each.

        Returns ``{rtt: {"WFC": PtoEvolution, "IACK": PtoEvolution}}``.
        """
        out = {}
        for rtt in rtt_values_ms:
            out[rtt] = {
                "WFC": self.evolution(rtt, delta_t_ms, n_samples),
                "IACK": self.evolution(rtt, 0.0, n_samples),
            }
        return out
