"""Deployment advisor — the paper's Table 2 as an executable policy.

"Optimally, servers should adjust the utilization of instant ACK
depending on the expected certificate size and current frontend to
certificate store delay" (Appendix C). :class:`DeploymentAdvisor`
implements exactly the published decision table and explains each
recommendation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.sweet_spot import CLIENT_PTO_FACTOR
from repro.quic.amplification import AMPLIFICATION_FACTOR
from repro.quic.packet import INITIAL_MIN_DATAGRAM


class LossScenario(enum.Enum):
    """The loss columns of Table 2."""

    NONE = "no loss"
    FIRST_SERVER_FLIGHT_TAIL = "first server flight except first datagram"
    SECOND_CLIENT_FLIGHT = "second client flight"


class Recommendation(enum.Enum):
    WFC = "wait for certificate"
    IACK = "instant ACK"


@dataclass(frozen=True)
class Advice:
    recommendation: Recommendation
    reason: str


class DeploymentAdvisor:
    """Recommends WFC or IACK per Table 2.

    Parameters
    ----------
    amplification_budget_bytes:
        Bytes the server may send before validation — 3x the client's
        first (1200 B) datagram by default.
    handshake_overhead_bytes:
        Non-certificate bytes of the first server flight (ServerHello,
        EncryptedExtensions, CertificateVerify, Finished, headers).
    """

    def __init__(
        self,
        amplification_budget_bytes: int = AMPLIFICATION_FACTOR * INITIAL_MIN_DATAGRAM,
        handshake_overhead_bytes: int = 700,
    ):
        self.amplification_budget_bytes = amplification_budget_bytes
        self.handshake_overhead_bytes = handshake_overhead_bytes

    def certificate_exceeds_budget(self, certificate_size: int) -> bool:
        return (
            certificate_size + self.handshake_overhead_bytes
            > self.amplification_budget_bytes
        )

    def advise(
        self,
        certificate_size: int,
        rtt_ms: float,
        delta_t_ms: float,
        loss: LossScenario = LossScenario.NONE,
    ) -> Advice:
        """Table 2, row by row."""
        if certificate_size <= 0:
            raise ValueError("certificate size must be positive")
        if rtt_ms <= 0:
            raise ValueError("RTT must be positive")
        if delta_t_ms < 0:
            raise ValueError("Δt cannot be negative")
        exceeds = self.certificate_exceeds_budget(certificate_size)
        if exceeds:
            # Row (2): IACK in every column — probes raise the budget.
            return Advice(
                Recommendation.IACK,
                "certificate exceeds the anti-amplification budget; "
                "earlier client probes raise the server's sending budget",
            )
        # Row (1): certificate fits the budget.
        if loss is LossScenario.FIRST_SERVER_FLIGHT_TAIL:
            return Advice(
                Recommendation.WFC,
                "an instant ACK gives the server no RTT sample, so its "
                "retransmission waits for the default PTO",
            )
        if loss is LossScenario.SECOND_CLIENT_FLIGHT:
            return Advice(
                Recommendation.IACK,
                "the accurate first RTT sample shortens the client PTO, "
                "so the lost request is resent sooner",
            )
        if delta_t_ms < CLIENT_PTO_FACTOR * rtt_ms:
            return Advice(
                Recommendation.IACK,
                "Δt below the client PTO (3 x RTT): faster loss reaction "
                "without spurious retransmissions",
            )
        return Advice(
            Recommendation.WFC,
            "Δt at or above the client PTO (3 x RTT): instant ACK would "
            "cause spurious client probes and futile server load",
        )

    def table2(self, rtt_ms: float = 9.0):
        """Render the full decision table as nested dicts (for the
        table2 experiment and tests)."""
        small = self.amplification_budget_bytes - self.handshake_overhead_bytes
        large = self.amplification_budget_bytes + 1
        rows = {}
        for label, cert in (("fits", small), ("exceeds", large)):
            rows[label] = {
                "first_server_flight_tail": self.advise(
                    cert, rtt_ms, 0.0, LossScenario.FIRST_SERVER_FLIGHT_TAIL
                ).recommendation,
                "second_client_flight": self.advise(
                    cert, rtt_ms, 0.0, LossScenario.SECOND_CLIENT_FLIGHT
                ).recommendation,
                "no_loss_small_delta": self.advise(
                    cert, rtt_ms, rtt_ms, LossScenario.NONE
                ).recommendation,
                "no_loss_large_delta": self.advise(
                    cert, rtt_ms, CLIENT_PTO_FACTOR * rtt_ms + 1.0, LossScenario.NONE
                ).recommendation,
            }
        return rows
