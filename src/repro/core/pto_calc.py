"""PTO reconstruction from packet logs "according to the standard".

"To ensure consistency, we calculate PTOs based on sent and received
packets according to the standard [RFC 9002]" (§3) — independent of
what each implementation's qlog ``recovery:metrics_updated`` events
claim, and used as the fallback "when RTT variance is not available,
we calculate it from the sent and received packets instead"
(Appendix E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.qlog.events import PacketEvent, QlogEvent
from repro.quic.recovery import GRANULARITY_MS, RttEstimator


@dataclass(frozen=True)
class PtoPoint:
    """PTO value after one RTT sample."""

    time_ms: float
    sample_ms: float
    smoothed_rtt_ms: float
    rttvar_ms: float
    pto_ms: float


class PtoCalculator:
    """Standard-conformant PTO calculation from packet events."""

    def __init__(self, granularity_ms: float = GRANULARITY_MS):
        self.granularity_ms = granularity_ms

    def from_events(self, events: List[QlogEvent]) -> List[PtoPoint]:
        """Replay ``packet_sent``/``packet_received`` events and emit a
        PTO point per RTT sample.

        A sample is taken when a received packet newly acknowledges an
        ack-eliciting sent packet with the largest acknowledged packet
        number in its space (RFC 9002 §5.1).
        """
        sent_times: Dict[tuple, float] = {}
        sent_eliciting: Dict[tuple, bool] = {}
        largest_acked: Dict[str, int] = {}
        estimator = RttEstimator()
        points: List[PtoPoint] = []
        for event in sorted(
            (e for e in events if isinstance(e, PacketEvent)),
            key=lambda e: e.time_ms,
        ):
            key_space = event.space
            if event.name == "packet_sent":
                key = (key_space, event.packet_number)
                sent_times[key] = event.time_ms
                sent_eliciting[key] = event.ack_eliciting
            elif event.name == "packet_received" and event.newly_acked:
                largest = max(event.newly_acked)
                prior = largest_acked.get(key_space)
                if prior is not None and largest <= prior:
                    continue
                largest_acked[key_space] = largest
                key = (key_space, largest)
                if key not in sent_times or not sent_eliciting.get(key, False):
                    continue
                sample = event.time_ms - sent_times[key]
                if sample <= 0:
                    continue
                estimator.update(sample)
                assert estimator.smoothed_rtt is not None
                assert estimator.rttvar is not None
                pto = estimator.smoothed_rtt + max(
                    4.0 * estimator.rttvar, self.granularity_ms
                )
                points.append(
                    PtoPoint(
                        time_ms=event.time_ms,
                        sample_ms=sample,
                        smoothed_rtt_ms=estimator.smoothed_rtt,
                        rttvar_ms=estimator.rttvar,
                        pto_ms=pto,
                    )
                )
        return points

    def first_pto(self, events: List[QlogEvent]) -> Optional[float]:
        points = self.from_events(events)
        if not points:
            return None
        return points[0].pto_ms


def pto_series_from_qlog(events: List[QlogEvent]) -> List[float]:
    """Convenience: just the PTO values, in time order."""
    return [point.pto_ms for point in PtoCalculator().from_events(events)]
