"""The paper's analytical core.

* :mod:`repro.core.pto_model` — numerical PTO-evolution model
  (Figure 2) and the first-PTO-reduction formula.
* :mod:`repro.core.sweet_spot` — when instant ACK helps, when it
  causes spurious retransmissions (Figure 4).
* :mod:`repro.core.advisor` — the deployment guidelines of Table 2 as
  an executable decision procedure.
* :mod:`repro.core.pto_calc` — PTO reconstruction from packet logs
  "according to the standard" (§3), used to cross-check
  implementation-reported metrics.
"""

from repro.core.advisor import DeploymentAdvisor, LossScenario, Recommendation
from repro.core.pto_calc import PtoCalculator, pto_series_from_qlog
from repro.core.pto_model import PtoModel, first_pto_reduction
from repro.core.sweet_spot import (
    InstantAckImpact,
    classify_impact,
    spurious_retransmissions_expected,
    sweep,
)

__all__ = [
    "PtoModel",
    "first_pto_reduction",
    "DeploymentAdvisor",
    "LossScenario",
    "Recommendation",
    "InstantAckImpact",
    "classify_impact",
    "spurious_retransmissions_expected",
    "sweep",
    "PtoCalculator",
    "pto_series_from_qlog",
]
