"""Sweet-spot analysis: when does instant ACK help? (paper Figure 4).

"Spurious retransmits happen if the delay between Frontend Server and
Cert Store (Δt) is larger than the PTO set by the client" — the client
PTO after an instant ACK is ≈ 3 x RTT, so the boundary is Δt = 3 RTT.
Below it, IACK buys latency under loss; above it, the client's probes
are spurious (though they still help when the server is stalled by
the anti-amplification limit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List

from repro.core.pto_model import first_pto_reduction_rtt_units

#: The client PTO after an instant ACK is 3 x RTT (first-sample init).
CLIENT_PTO_FACTOR = 3.0


class InstantAckImpact(enum.Enum):
    """Figure 4's two regions, plus the amplification-stall case."""

    REDUCED_LATENCY = "reduced latency"
    SPURIOUS_RETRANSMISSIONS = "spurious retransmissions"
    #: Spurious probes that nonetheless speed up the handshake because
    #: the server is blocked by the anti-amplification limit (§4.1).
    SPURIOUS_BUT_UNBLOCKS = "spurious but unblocks amplification"


def spurious_retransmissions_expected(rtt_ms: float, delta_t_ms: float) -> bool:
    """Whether Δt exceeds the client PTO (3 x RTT)."""
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    if delta_t_ms < 0:
        raise ValueError("Δt cannot be negative")
    return delta_t_ms > CLIENT_PTO_FACTOR * rtt_ms


def classify_impact(
    rtt_ms: float,
    delta_t_ms: float,
    server_amplification_blocked: bool = False,
) -> InstantAckImpact:
    """Classify the impact of enabling instant ACK for one deployment."""
    if not spurious_retransmissions_expected(rtt_ms, delta_t_ms):
        return InstantAckImpact.REDUCED_LATENCY
    if server_amplification_blocked:
        return InstantAckImpact.SPURIOUS_BUT_UNBLOCKS
    return InstantAckImpact.SPURIOUS_RETRANSMISSIONS


@dataclass(frozen=True)
class SweetSpotPoint:
    """One (RTT, Δt) point of the Figure 4 sweep."""

    rtt_ms: float
    delta_t_ms: float
    pto_reduction_rtt_units: float
    spurious: bool


def sweep(
    rtt_values_ms: Iterable[float],
    delta_t_values_ms: Iterable[float],
) -> List[SweetSpotPoint]:
    """Full Figure 4 sweep: PTO reduction (in RTT units) and the
    spurious-retransmission flag for every (RTT, Δt) pair."""
    points: List[SweetSpotPoint] = []
    for delta in delta_t_values_ms:
        for rtt in rtt_values_ms:
            points.append(
                SweetSpotPoint(
                    rtt_ms=rtt,
                    delta_t_ms=delta,
                    pto_reduction_rtt_units=first_pto_reduction_rtt_units(rtt, delta),
                    spurious=spurious_retransmissions_expected(rtt, delta),
                )
            )
    return points


def reduced_latency_zone_boundary_ms(rtt_ms: float) -> float:
    """The largest Δt that avoids spurious retransmissions: 3 x RTT."""
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    return CLIENT_PTO_FACTOR * rtt_ms
