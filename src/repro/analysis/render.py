"""Plain-text rendering of tables and series.

Every experiment module prints "the same rows/series the paper
reports" through these helpers, so outputs are uniform and easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Iterable[Tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as aligned columns."""
    rows = [(x, y) for x, y in points]
    return render_table([x_label, y_label], rows, title=name)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
