"""Small statistics toolkit (medians, percentiles, CDFs).

The paper reports medians, 50 % percentile intervals (Figures 9, 15),
and CDFs (Figures 8, 14); these helpers compute exactly those.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


def _clean(values: Iterable[Optional[float]]) -> List[float]:
    return [v for v in values if v is not None and not math.isnan(v)]


def median(values: Iterable[Optional[float]]) -> Optional[float]:
    """Median ignoring ``None``/NaN entries; ``None`` if empty."""
    data = sorted(_clean(values))
    if not data:
        return None
    n = len(data)
    mid = n // 2
    if n % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def percentile(values: Iterable[Optional[float]], q: float) -> Optional[float]:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(_clean(values))
    if not data:
        return None
    if len(data) == 1:
        return data[0]
    rank = q / 100.0 * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


def percentile_interval(
    values: Iterable[Optional[float]], width: float = 50.0
) -> Optional[Tuple[float, float]]:
    """Central interval covering ``width`` percent of the data — the
    "50 % percentile interval" of Figures 9/15."""
    if not 0.0 < width <= 100.0:
        raise ValueError(f"interval width must be in (0, 100], got {width}")
    data = _clean(values)
    if not data:
        return None
    tail = (100.0 - width) / 2.0
    low = percentile(data, tail)
    high = percentile(data, 100.0 - tail)
    assert low is not None and high is not None
    return (low, high)


def cdf(values: Iterable[Optional[float]]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, probability)`` points."""
    data = sorted(_clean(values))
    n = len(data)
    return [(value, (i + 1) / n) for i, value in enumerate(data)]


def cdf_at(values: Iterable[Optional[float]], threshold: float) -> Optional[float]:
    """P(X <= threshold) of the empirical distribution."""
    data = _clean(values)
    if not data:
        return None
    return sum(1 for v in data if v <= threshold) / len(data)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used by experiment printouts."""

    count: int
    median: Optional[float]
    p25: Optional[float]
    p75: Optional[float]
    minimum: Optional[float]
    maximum: Optional[float]

    def format(self, unit: str = "ms") -> str:
        if self.count == 0 or self.median is None:
            return "n=0"
        return (
            f"n={self.count} median={self.median:.1f}{unit} "
            f"IQR=[{self.p25:.1f}, {self.p75:.1f}] "
            f"range=[{self.minimum:.1f}, {self.maximum:.1f}]"
        )


def summarize(values: Iterable[Optional[float]]) -> Summary:
    data = _clean(values)
    return Summary(
        count=len(data),
        median=median(data),
        p25=percentile(data, 25.0),
        p75=percentile(data, 75.0),
        minimum=min(data) if data else None,
        maximum=max(data) if data else None,
    )
