"""Statistics and rendering helpers shared by the experiments."""

from repro.analysis.render import render_series, render_table
from repro.analysis.stats import (
    cdf,
    median,
    percentile,
    percentile_interval,
    summarize,
)

__all__ = [
    "median",
    "percentile",
    "percentile_interval",
    "cdf",
    "summarize",
    "render_table",
    "render_series",
]
