"""Per-CDN deployment models fitted to the paper's aggregates.

Each :class:`CdnDeployment` captures what the macroscopic measurements
observed of one CDN:

* the share of its domains with instant ACK enabled (Table 1) and the
  day/vantage variation of that share;
* the backend (frontend ↔ certificate store) delay distribution,
  which sets the ACK→ServerHello gap (Figure 8: medians 3.2 ms
  Cloudflare, 6.4 ms Amazon, 20.9 ms Akamai, 30.3 ms Google);
* the probability that the certificate is already cached on the
  frontend, which yields a *coalesced* ACK–ServerHello instead;
* the acknowledgment-delay field behavior (Figure 10 / Appendix D):
  most CDNs send coalesced ACK–SH whose ack_delay exceeds the RTT,
  while IACK ack delays are below the RTT for Akamai (61 %) and
  Others (79.1 %).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict

from repro.wild.asdb import Cdn


@dataclass(frozen=True)
class CdnDeployment:
    """Generative parameters of one CDN's QUIC frontend fleet."""

    cdn: Cdn
    #: Number of its Tranco Top-1M domains answering QUIC (Table 1).
    domains: int
    #: Share of domains with instant ACK enabled (Table 1).
    iack_share: float
    #: Maximum share variation across vantage points/days (Table 1).
    share_variation: float
    #: Median backend delay between the (instant) ACK and the
    #: ServerHello [ms] (Figure 8).
    backend_delay_median_ms: float
    #: Log-normal sigma of the backend delay.
    backend_delay_sigma: float = 0.8
    #: Probability the certificate is cached at the frontend, in which
    #: case ACK and ServerHello are coalesced into one datagram.
    cert_cached_probability: float = 0.3
    #: Probability that a *coalesced* ACK–SH carries an ack_delay
    #: exceeding the path RTT (Figure 10a).
    coalesced_ack_delay_exceeds_rtt: float = 0.9
    #: Probability that an *instant* ACK carries an ack_delay below the
    #: path RTT (Figure 10b) — allowing correct RTT adjustment.
    iack_ack_delay_below_rtt: float = 0.3

    def sample_iack_enabled(self, rng: random.Random, bias: float = 0.0) -> bool:
        """Whether one domain (on one day, from one vantage) shows
        instant ACK. ``bias`` in [-1, 1] shifts the share by up to the
        deployment's variation (vantage/day effects)."""
        share = self.iack_share + bias * self.share_variation
        share = min(1.0, max(0.0, share))
        return rng.random() < share

    def sample_backend_delay_ms(self, rng: random.Random, diurnal: float = 0.0) -> float:
        """Backend delay sample; ``diurnal`` in [0, 1] scales the
        median up by up to 50 % (daytime load, Figure 9/Appendix G)."""
        median = self.backend_delay_median_ms * (1.0 + 0.5 * diurnal)
        mu = math.log(max(median, 1e-3))
        return rng.lognormvariate(mu, self.backend_delay_sigma)

    def sample_cert_cached(self, rng: random.Random, popularity: float = 0.0) -> bool:
        """Certificate cache hit; only very popular domains see warm
        frontends during a cold scan ("a strong indicator for
        caching", §4.3) — hence the cubic popularity term."""
        p = min(1.0, self.cert_cached_probability + 0.6 * popularity**3)
        return rng.random() < p

    def sample_ack_delay_field_ms(
        self, rng: random.Random, rtt_ms: float, coalesced: bool
    ) -> float:
        """The ACK frame's acknowledgment-delay field (Figure 10)."""
        if coalesced:
            if rng.random() < self.coalesced_ack_delay_exceeds_rtt:
                return rtt_ms + rng.uniform(0.1, 0.9)  # "difference ... < 1 ms"
            return max(0.0, rtt_ms - rng.uniform(0.0, 1.0))
        if rng.random() < self.iack_ack_delay_below_rtt:
            return rng.uniform(0.0, max(rtt_ms - 0.1, 0.05))
        return rtt_ms + rng.uniform(0.1, min(rtt_ms * 2.0 + 1.0, 250.0))


#: Fitted deployments, one per CDN (Table 1 + Figure 8 + Figure 10).
DEPLOYMENTS: Dict[Cdn, CdnDeployment] = {
    Cdn.AKAMAI: CdnDeployment(
        cdn=Cdn.AKAMAI, domains=533, iack_share=0.322, share_variation=0.129,
        backend_delay_median_ms=20.9, cert_cached_probability=0.05,
        iack_ack_delay_below_rtt=0.61,
    ),
    Cdn.AMAZON: CdnDeployment(
        cdn=Cdn.AMAZON, domains=4338, iack_share=0.41, share_variation=0.18,
        backend_delay_median_ms=6.4, cert_cached_probability=0.05,
        iack_ack_delay_below_rtt=0.13,
    ),
    Cdn.CLOUDFLARE: CdnDeployment(
        cdn=Cdn.CLOUDFLARE, domains=247407, iack_share=0.999,
        share_variation=0.001, backend_delay_median_ms=3.2,
        cert_cached_probability=0.001,
        coalesced_ack_delay_exceeds_rtt=0.999,
        iack_ack_delay_below_rtt=0.001,
    ),
    Cdn.FASTLY: CdnDeployment(
        cdn=Cdn.FASTLY, domains=3960, iack_share=0.0, share_variation=0.0,
        backend_delay_median_ms=4.0, cert_cached_probability=0.5,
        coalesced_ack_delay_exceeds_rtt=0.605,
    ),
    Cdn.GOOGLE: CdnDeployment(
        cdn=Cdn.GOOGLE, domains=6062, iack_share=0.115, share_variation=0.115,
        backend_delay_median_ms=30.3, cert_cached_probability=0.05,
        coalesced_ack_delay_exceeds_rtt=0.348,
        iack_ack_delay_below_rtt=0.4,
    ),
    Cdn.META: CdnDeployment(
        cdn=Cdn.META, domains=112, iack_share=0.0, share_variation=0.0,
        backend_delay_median_ms=3.0, cert_cached_probability=0.8,
        coalesced_ack_delay_exceeds_rtt=1.0,
    ),
    Cdn.MICROSOFT: CdnDeployment(
        cdn=Cdn.MICROSOFT, domains=34, iack_share=0.0, share_variation=0.0,
        backend_delay_median_ms=5.0, cert_cached_probability=0.5,
    ),
    Cdn.OTHERS: CdnDeployment(
        cdn=Cdn.OTHERS, domains=26404, iack_share=0.215, share_variation=0.023,
        backend_delay_median_ms=8.0, cert_cached_probability=0.08,
        coalesced_ack_delay_exceeds_rtt=0.779,
        iack_ack_delay_below_rtt=0.791,
    ),
}


def deployment_for(cdn: Cdn) -> CdnDeployment:
    return DEPLOYMENTS[cdn]


def total_quic_domains() -> int:
    """All Tranco Top-1M domains answering QUIC in the model."""
    return sum(d.domains for d in DEPLOYMENTS.values())
