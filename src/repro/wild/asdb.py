"""AS database and CDN inference (paper Table 5 / Appendix G).

"CDN hosted domains are inferred from their IP addresses mapped to
origin ASes gained from route announcements ... To account for CDNs
operating multiple ASes, we assign multiple AS numbers to one CDN."
"""

from __future__ import annotations

import enum
import ipaddress
from typing import Dict, Optional, Tuple


class Cdn(enum.Enum):
    AKAMAI = "Akamai"
    AMAZON = "Amazon"
    CLOUDFLARE = "Cloudflare"
    FASTLY = "Fastly"
    GOOGLE = "Google"
    META = "Meta"
    MICROSOFT = "Microsoft"
    OTHERS = "Others"


#: Paper Table 5: AS numbers used for CDN inferences.
CDN_AS_NUMBERS: Dict[Cdn, Tuple[int, ...]] = {
    Cdn.AKAMAI: (16625, 20940),
    Cdn.AMAZON: (14618, 16509),
    Cdn.CLOUDFLARE: (13335, 209242),
    Cdn.FASTLY: (54113,),
    Cdn.GOOGLE: (15169, 396982),
    Cdn.META: (32934,),
    Cdn.MICROSOFT: (8075,),
}

#: A representative AS for "Others" (hosting services).
OTHERS_ASN = 24940  # e.g. a large hoster

#: Process-wide address → CDN memo. The synthetic routing table is a
#: module constant, so the inference is the same for every
#: :class:`AsDatabase` instance — sharing the memo lets repeated scan
#: passes (vantages × days re-probing the same toplist) skip the
#: ipaddress parsing that otherwise dominates a pass.
_CDN_FOR_ADDRESS: Dict[str, "Cdn"] = {}


class AsDatabase:
    """Synthetic routing table: one /16 per AS, deterministic.

    Real measurements join IPs against BGP announcements; here every
    AS owns ``10.<index>.0.0/16`` so that address→AS→CDN lookups are
    deterministic and testable.
    """

    def __init__(self) -> None:
        self._asn_to_prefix: Dict[int, ipaddress.IPv4Network] = {}
        self._prefix_index: Dict[int, int] = {}  # second octet -> asn
        index = 1
        all_asns = sorted(
            {asn for asns in CDN_AS_NUMBERS.values() for asn in asns} | {OTHERS_ASN}
        )
        for asn in all_asns:
            network = ipaddress.ip_network(f"10.{index}.0.0/16")
            self._asn_to_prefix[asn] = network
            self._prefix_index[index] = asn
            index += 1
        self._asn_to_cdn: Dict[int, Cdn] = {}
        for cdn, asns in CDN_AS_NUMBERS.items():
            for asn in asns:
                self._asn_to_cdn[asn] = cdn
        self._asn_to_cdn[OTHERS_ASN] = Cdn.OTHERS

    def prefix_for_asn(self, asn: int) -> ipaddress.IPv4Network:
        try:
            return self._asn_to_prefix[asn]
        except KeyError:
            raise KeyError(f"ASN {asn} not in database") from None

    def address_in_asn(self, asn: int, host_index: int) -> str:
        """Deterministic address: the ``host_index``-th host of the
        AS's prefix."""
        network = self.prefix_for_asn(asn)
        base = int(network.network_address)
        size = network.num_addresses
        return str(ipaddress.ip_address(base + 1 + (host_index % (size - 2))))

    def origin_asn(self, address: str) -> Optional[int]:
        """Longest-prefix-match lookup (here: the /16 second octet)."""
        ip = ipaddress.ip_address(address)
        if ip.version != 4:
            return None
        second_octet = (int(ip) >> 16) & 0xFF
        first_octet = int(ip) >> 24
        if first_octet != 10:
            return None
        return self._prefix_index.get(second_octet)

    def cdn_for_address(self, address: str) -> Cdn:
        """The paper's inference: IP → origin AS → CDN, with unknown
        origins grouped under "Others" (hosting services)."""
        cached = _CDN_FOR_ADDRESS.get(address)
        if cached is not None:
            return cached
        asn = self.origin_asn(address)
        cdn = Cdn.OTHERS if asn is None else self._asn_to_cdn.get(asn, Cdn.OTHERS)
        _CDN_FOR_ADDRESS[address] = cdn
        return cdn

    def asns_for_cdn(self, cdn: Cdn) -> Tuple[int, ...]:
        if cdn is Cdn.OTHERS:
            return (OTHERS_ASN,)
        return CDN_AS_NUMBERS[cdn]
