"""The Cloudflare longitudinal study (§3, §4.3, Figures 9 and 15).

The paper adds twelve otherwise-unused domains to the Cloudflare Free
Tier, selects six popular Tranco domains also on Cloudflare, and for
one week schedules one connection per minute (plus 60/min against six
of the own domains). Responses are dissected for the arrival times of
ACK, ServerHello, and coalesced ACK–SH; only same-city responses with
the connection's first ACK count.

Offline, a :class:`CloudflareEdge` models the frontend with a
certificate cache (keyed by domain, with a TTL): frequently requested
domains hit the cache and produce *coalesced* ACK–SH; cold domains
produce an instant ACK followed by the ServerHello after the
certificate-store round trip, whose delay follows a diurnal cycle
("larger delays ... during local day time compared to the night",
§4.3/Appendix G).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.wild.asdb import Cdn
from repro.wild.cdn import deployment_for
from repro.wild.vantage import VantagePoint

#: One week of measurement, in minutes.
WEEK_MINUTES = 7 * 24 * 60


@dataclass(frozen=True)
class LongitudinalSample:
    """One connection's dissected response."""

    minute: int
    domain: str
    vantage: str
    iata: str
    same_city: bool
    has_first_ack: bool
    #: "SH", "ACK", or "ACK,SH" (coalesced) — the three series of
    #: Figure 9.
    kind: str
    #: Time from ClientHello to the (first) ACK [ms].
    ack_latency_ms: Optional[float]
    #: Time from ClientHello to the ServerHello [ms].
    sh_latency_ms: Optional[float]

    @property
    def hour(self) -> int:
        return self.minute // 60

    @property
    def local_hour_of_day(self) -> int:
        return (self.minute // 60) % 24


@dataclass
class CloudflareEdge:
    """A same-city Cloudflare frontend cluster with a cert cache."""

    iata: str
    cache_ttl_minutes: float = 30.0
    _cache: Dict[str, float] = field(default_factory=dict)

    def lookup_and_refresh(self, domain: str, minute: float) -> bool:
        """True when the certificate is cached (and refresh it)."""
        expiry = self._cache.get(domain)
        hit = expiry is not None and expiry >= minute
        self._cache[domain] = minute + self.cache_ttl_minutes
        return hit


def diurnal_factor(minute: int) -> float:
    """Backend load in [0, 1]: peaks at 14:00 local, troughs at 02:00."""
    hour = (minute / 60.0) % 24.0
    return 0.5 + 0.5 * math.sin((hour - 8.0) / 24.0 * 2.0 * math.pi)


class CloudflareLongitudinalStudy:
    """Generates the week-long measurement the paper runs.

    Parameters
    ----------
    vantage:
        Measurement location (the edge cluster is in the same city).
    own_domains / popular_domains:
        Domain name lists; popular domains have high background
        request rates (other users keep their certs cached).
    fast_rate_domains:
        Subset of own domains contacted 60x per minute instead of 1x.
    """

    def __init__(
        self,
        vantage: VantagePoint,
        own_domains: Optional[List[str]] = None,
        popular_domains: Optional[List[str]] = None,
        fast_rate_domains: Optional[List[str]] = None,
        seed: int = 0,
    ):
        self.vantage = vantage
        self.own_domains = own_domains or [
            f"own-domain-{i:02d}.example" for i in range(12)
        ]
        self.popular_domains = popular_domains or [
            "discord.com",
            "cloudflare.com",
            "tinyurl.com",
            "docker.com",
            "udemy.com",
            "kickstarter.com",
        ]
        self.fast_rate_domains = fast_rate_domains or self.own_domains[6:12]
        self.seed = seed
        #: Background cache-hit probability for popular domains
        #: (other users' traffic keeps them warm); fitted to the §4.3
        #: coalescing shares (discord.com 91.9 % ... docker.com 0.7 %).
        self.popular_background_warmth: Dict[str, float] = {
            "discord.com": 0.919,
            "cloudflare.com": 0.505,
            "tinyurl.com": 0.177,
            "docker.com": 0.007,
            "udemy.com": 0.0,
            "kickstarter.com": 0.0,
        }
        #: udemy.com and kickstarter.com sent IACKs "but no SHs
        #: follow" (§4.3).
        self.broken_sh_domains = {"udemy.com", "kickstarter.com"}

    def run(
        self,
        minutes: int = WEEK_MINUTES,
        outage_minutes: Optional[Iterable[int]] = None,
    ) -> List[LongitudinalSample]:
        """Produce all samples of the study.

        ``outage_minutes`` marks host-maintenance gaps (the Hong Kong
        misconfiguration of Figure 15 drops those samples).
        """
        rng = random.Random(f"cf:{self.seed}:{self.vantage.name}")
        edge = CloudflareEdge(iata=self.vantage.iata)
        outages = set(outage_minutes or ())
        deployment = deployment_for(Cdn.CLOUDFLARE)
        samples: List[LongitudinalSample] = []
        slow_domains = [d for d in self.own_domains if d not in self.fast_rate_domains]
        for minute in range(minutes):
            if minute in outages:
                continue
            # 1/min to six own (slow) + six popular domains.
            for domain in slow_domains + self.popular_domains:
                samples.append(
                    self._one_connection(domain, minute, rng, edge, deployment)
                )
            # 60/min to the fast-rate own domains: sample one of the
            # sixty connections for the analysis (the paper analyzes
            # all; one per minute preserves the distribution).
            for domain in self.fast_rate_domains:
                for _ in range(2):
                    samples.append(
                        self._one_connection(
                            domain, minute, rng, edge, deployment, fast=True
                        )
                    )
        return samples

    def _one_connection(
        self,
        domain: str,
        minute: int,
        rng: random.Random,
        edge: CloudflareEdge,
        deployment,
        fast: bool = False,
    ) -> LongitudinalSample:
        rtt = self.vantage.sample_rtt_ms(Cdn.CLOUDFLARE, rng)
        # ~1.5 % of responses come from another city's cluster and are
        # filtered out; ~1 % lose the first ACK to packet loss.
        same_city = rng.random() > 0.015
        has_first_ack = rng.random() > 0.01
        warm = edge.lookup_and_refresh(domain, float(minute))
        background = self.popular_background_warmth.get(domain, 0.0)
        if not warm and background > 0.0:
            warm = rng.random() < background
        if fast:
            # 60 connections/min keep the edge warm part of the time
            # ("we receive coalesced ACKs and ServerHellos more likely
            # (7.5 %)", §4.3).
            warm = warm or rng.random() < 0.075
        else:
            # Our 1/min own domains almost always (99.9 %) get an IACK.
            if domain in self.own_domains:
                warm = warm and rng.random() < 0.02
        diurnal = diurnal_factor(minute)
        backend = deployment.sample_backend_delay_ms(rng, diurnal=diurnal)
        # Median IACK→SH gaps per vantage are 2.1–2.6 ms (§4.3);
        # same-city backend fetches are faster than the global Fig. 8
        # population, so scale down (0.52 lands the overall median at
        # ~2.1 ms once the diurnal factor is averaged in).
        backend = max(0.3, backend * 0.52)
        ack_latency = rtt / 2.0 + rng.uniform(0.05, 0.3) + rtt / 2.0
        if domain in self.broken_sh_domains:
            return LongitudinalSample(
                minute=minute, domain=domain, vantage=self.vantage.name,
                iata=edge.iata, same_city=same_city,
                has_first_ack=has_first_ack, kind="ACK",
                ack_latency_ms=ack_latency, sh_latency_ms=None,
            )
        if warm:
            # Coalesced ACK–SH: SH in coalesced messages arrives
            # faster than a separate SH (Figure 9).
            latency = ack_latency + rng.uniform(0.05, 0.4)
            return LongitudinalSample(
                minute=minute, domain=domain, vantage=self.vantage.name,
                iata=edge.iata, same_city=same_city,
                has_first_ack=has_first_ack, kind="ACK,SH",
                ack_latency_ms=latency, sh_latency_ms=latency,
            )
        return LongitudinalSample(
            minute=minute, domain=domain, vantage=self.vantage.name,
            iata=edge.iata, same_city=same_city,
            has_first_ack=has_first_ack, kind="SH",
            ack_latency_ms=ack_latency, sh_latency_ms=ack_latency + backend,
        )


def filter_valid(samples: Iterable[LongitudinalSample]) -> List[LongitudinalSample]:
    """The paper's validity filter: same-city responses that contain
    the connection's first ACK."""
    return [s for s in samples if s.same_city and s.has_first_ack]
