"""Measurement vantage points (§3).

"We perform all measurements from a European university network
(Hamburg, DE) and Google Cloud VMs in North America (Los Angeles,
US), South America (Sao Paulo, BR), and Asia (Hong Kong, HK)."

Each vantage point carries an RTT model to CDN edges: anycast CDNs
terminate connections nearby (a few ms), while non-CDN "Others"
servers can be anywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.wild.asdb import Cdn


@dataclass(frozen=True)
class VantagePoint:
    """One measurement location."""

    name: str
    city: str
    iata: str
    #: (median, sigma) of the lognormal-ish RTT to anycast CDN edges.
    cdn_rtt_median_ms: float
    cdn_rtt_jitter: float
    #: Median RTT to arbitrary ("Others") servers.
    others_rtt_median_ms: float

    def sample_rtt_ms(self, cdn: Cdn, rng: random.Random) -> float:
        """Path RTT from this vantage to a server of the given CDN."""
        if cdn is Cdn.OTHERS:
            base = self.others_rtt_median_ms
            spread = 0.9
        else:
            base = self.cdn_rtt_median_ms
            spread = self.cdn_rtt_jitter
        import math

        return max(0.3, rng.lognormvariate(math.log(base), spread))


#: The four vantage points of the paper, with RTT medians chosen so
#: the Cloudflare medians of Figure 15 (2.1–2.6 ms between IACK and
#: SH; median RTT such that 6.3–7.2 ms is "up to 79 % of the median
#: RTT") are reproduced.
VANTAGE_POINTS: Dict[str, VantagePoint] = {
    "Hamburg": VantagePoint(
        name="Hamburg", city="Hamburg", iata="HAM",
        cdn_rtt_median_ms=8.5, cdn_rtt_jitter=0.35, others_rtt_median_ms=42.0,
    ),
    "Los Angeles": VantagePoint(
        name="Los Angeles", city="Los Angeles", iata="LAX",
        cdn_rtt_median_ms=9.0, cdn_rtt_jitter=0.35, others_rtt_median_ms=55.0,
    ),
    "Sao Paulo": VantagePoint(
        name="Sao Paulo", city="Sao Paulo", iata="GRU",
        cdn_rtt_median_ms=8.8, cdn_rtt_jitter=0.4, others_rtt_median_ms=80.0,
    ),
    "Hong Kong": VantagePoint(
        name="Hong Kong", city="Hong Kong", iata="HKG",
        cdn_rtt_median_ms=9.2, cdn_rtt_jitter=0.4, others_rtt_median_ms=70.0,
    ),
}


def vantage(name: str) -> VantagePoint:
    try:
        return VANTAGE_POINTS[name]
    except KeyError:
        raise KeyError(
            f"unknown vantage point {name!r}; known: "
            f"{', '.join(sorted(VANTAGE_POINTS))}"
        ) from None
