"""Tranco-like toplist generation.

The paper targets the 1M domains of the Tranco list [10] from
August 06, 2024. Offline, :class:`TrancoGenerator` produces a
deterministic synthetic toplist whose QUIC-answering population
matches the paper's Table 1 counts per CDN, with Zipf-like popularity
by rank.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.wild.asdb import AsDatabase, Cdn
from repro.wild.cdn import DEPLOYMENTS


@dataclass(frozen=True)
class TrancoDomain:
    """One toplist entry."""

    rank: int
    name: str
    #: The CDN hosting it, or None when the domain does not answer
    #: QUIC (the majority of the list, as in the paper).
    cdn: Optional[Cdn]
    address: Optional[str]

    @property
    def answers_quic(self) -> bool:
        return self.cdn is not None

    @property
    def popularity(self) -> float:
        """Zipf-flavored popularity in (0, 1]; rank 1 → 1.0."""
        return 1.0 / (1.0 + 0.15 * (self.rank - 1) ** 0.5)


class TrancoGenerator:
    """Deterministic synthetic toplist.

    ``list_size`` defaults to the paper's 1M; the QUIC-answering
    population is scaled proportionally so that a 100k test list still
    has Table 1's *relative* CDN mix.
    """

    PAPER_LIST_SIZE = 1_000_000

    def __init__(self, list_size: int = PAPER_LIST_SIZE, seed: int = 20240806):
        if list_size <= 0:
            raise ValueError("list size must be positive")
        self.list_size = list_size
        self.seed = seed
        self.asdb = AsDatabase()

    def scaled_count(self, cdn: Cdn) -> int:
        """Table 1 domain count scaled to this list size."""
        exact = DEPLOYMENTS[cdn].domains * self.list_size / self.PAPER_LIST_SIZE
        return max(1, round(exact)) if DEPLOYMENTS[cdn].domains else 0

    def generate(self) -> List[TrancoDomain]:
        """Build the full list (hosting assignment is deterministic
        given the seed)."""
        rng = random.Random(f"tranco:{self.seed}")
        assignments: List[Optional[Cdn]] = [None] * self.list_size
        # Spread each CDN's scaled count uniformly over ranks; popular
        # ranks are slightly CDN-likelier (they are in reality).
        free = list(range(self.list_size))
        rng.shuffle(free)
        cursor = 0
        for cdn in Cdn:
            count = min(self.scaled_count(cdn), self.list_size - cursor)
            for slot in free[cursor : cursor + count]:
                assignments[slot] = cdn
            cursor += count
        domains: List[TrancoDomain] = []
        host_counters = {cdn: 0 for cdn in Cdn}
        for rank0, cdn in enumerate(assignments):
            rank = rank0 + 1
            name = f"domain{rank:07d}.example"
            address = None
            if cdn is not None:
                asns = self.asdb.asns_for_cdn(cdn)
                asn = asns[host_counters[cdn] % len(asns)]
                address = self.asdb.address_in_asn(asn, host_counters[cdn])
                host_counters[cdn] += 1
            domains.append(
                TrancoDomain(rank=rank, name=name, cdn=cdn, address=address)
            )
        return domains

    def quic_domains(self) -> List[TrancoDomain]:
        """Only the entries that answer QUIC."""
        return [d for d in self.generate() if d.answers_quic]

    def expected_quic_count(self) -> int:
        return sum(self.scaled_count(cdn) for cdn in Cdn)
