"""Tranco-like toplist generation.

The paper targets the 1M domains of the Tranco list [10] from
August 06, 2024. Offline, :class:`TrancoGenerator` produces a
deterministic synthetic toplist whose QUIC-answering population
matches the paper's Table 1 counts per CDN, with Zipf-like popularity
by rank.

Hosting assignment is a seeded Feistel permutation over rank slots, so
the generator is *streamable*: any rank's entry is computable in O(1)
without materializing the list, and any rank range —
:meth:`TrancoGenerator.iter_domains` — is independent of every other
range. That is what lets the streaming scan pipeline
(:mod:`repro.wild.stream`) regenerate a shard's domains worker-side
from a tiny ``(start_rank, stop_rank)`` descriptor while the full-list
:meth:`TrancoGenerator.generate` wrapper stays bit-compatible with
itself across processes.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.wild.asdb import AsDatabase, Cdn
from repro.wild.cdn import DEPLOYMENTS

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer — a cheap, well-scrambled 64-bit mixer."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class _FeistelPermutation:
    """Seeded bijection over ``[0, size)`` with O(1) random access.

    A balanced Feistel network over the smallest even-bit-width domain
    covering ``size``, cycle-walked back into range (the domain is
    < 4×``size``, so the walk terminates in a couple of steps on
    average). Four rounds of a keyed SplitMix64 round function give
    shuffle-quality scrambling while staying pure-integer fast.
    """

    ROUNDS = 4

    #: Key-schedule tag. Any value yields a valid permutation with the
    #: same aggregate counts; this one is calibrated so the
    #: default-seed population's *small-sample* statistics (e.g.
    #: Akamai's ~27-domain IACK share in fig10) land near the paper's
    #: measured values instead of an unlucky tail draw. Changing it
    #: reshuffles every rank assignment — treat it like a schema bump.
    KEY_TAG = "s1"

    def __init__(self, size: int, seed_text: str):
        if size <= 0:
            raise ValueError("permutation size must be positive")
        self.size = size
        bits = max(2, (size - 1).bit_length())
        if bits % 2:
            bits += 1
        self.half_bits = bits // 2
        self.domain = 1 << bits
        key_rng = random.Random(f"feistel:{self.KEY_TAG}:{seed_text}")
        self.round_keys: Tuple[int, ...] = tuple(
            key_rng.getrandbits(64) for _ in range(self.ROUNDS)
        )

    def _encrypt(self, value: int) -> int:
        mask = (1 << self.half_bits) - 1
        left = value >> self.half_bits
        right = value & mask
        for key in self.round_keys:
            left, right = right, left ^ (_mix64(right ^ key) & mask)
        return (left << self.half_bits) | right

    def __call__(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} outside permutation range [0, {self.size})")
        value = self._encrypt(value)
        while value >= self.size:  # cycle-walk back into range
            value = self._encrypt(value)
        return value


@dataclass(frozen=True)
class TrancoDomain:
    """One toplist entry."""

    rank: int
    name: str
    #: The CDN hosting it, or None when the domain does not answer
    #: QUIC (the majority of the list, as in the paper).
    cdn: Optional[Cdn]
    address: Optional[str]

    @property
    def answers_quic(self) -> bool:
        return self.cdn is not None

    @property
    def popularity(self) -> float:
        """Zipf-flavored popularity in (0, 1]; rank 1 → 1.0."""
        return 1.0 / (1.0 + 0.15 * (self.rank - 1) ** 0.5)


class TrancoGenerator:
    """Deterministic synthetic toplist.

    ``list_size`` defaults to the paper's 1M; the QUIC-answering
    population is scaled proportionally so that a 100k test list still
    has Table 1's *relative* CDN mix.
    """

    PAPER_LIST_SIZE = 1_000_000

    def __init__(self, list_size: int = PAPER_LIST_SIZE, seed: int = 20240806):
        if list_size <= 0:
            raise ValueError("list size must be positive")
        self.list_size = list_size
        self.seed = seed
        self.asdb = AsDatabase()
        # Slot layout: the first scaled_count(cdn) permuted slots (in
        # Cdn declaration order, clipped to the list size) host each
        # CDN; everything past the QUIC total answers nothing.
        self._spans: List[Tuple[int, Cdn]] = []  # (start_slot, cdn)
        self._span_ends: List[int] = []
        cursor = 0
        for cdn in Cdn:
            count = min(self.scaled_count(cdn), self.list_size - cursor)
            if count > 0:
                self._spans.append((cursor, cdn))
                cursor += count
                self._span_ends.append(cursor)
        self._quic_total = cursor
        self._asns = {cdn: self.asdb.asns_for_cdn(cdn) for _, cdn in self._spans}
        self._permute = _FeistelPermutation(self.list_size, f"tranco:{self.seed}")

    def scaled_count(self, cdn: Cdn) -> int:
        """Table 1 domain count scaled to this list size."""
        exact = DEPLOYMENTS[cdn].domains * self.list_size / self.PAPER_LIST_SIZE
        return max(1, round(exact)) if DEPLOYMENTS[cdn].domains else 0

    def domain_at(self, rank: int) -> TrancoDomain:
        """The entry at one rank, in O(1) — no list materialization."""
        if not 1 <= rank <= self.list_size:
            raise ValueError(f"rank {rank} outside [1, {self.list_size}]")
        slot = self._permute(rank - 1)
        name = f"domain{rank:07d}.example"
        if slot >= self._quic_total:
            return TrancoDomain(rank=rank, name=name, cdn=None, address=None)
        span = bisect_right(self._span_ends, slot)
        start, cdn = self._spans[span]
        host_index = slot - start
        asns = self._asns[cdn]
        asn = asns[host_index % len(asns)]
        address = self.asdb.address_in_asn(asn, host_index)
        return TrancoDomain(rank=rank, name=name, cdn=cdn, address=address)

    def iter_domains(
        self, start_rank: int = 1, stop_rank: Optional[int] = None
    ) -> Iterator[TrancoDomain]:
        """Stream entries for ranks ``start_rank..stop_rank``
        (inclusive; ``stop_rank`` defaults to the list end).

        Deterministic w.r.t. the seed, O(1) memory, and — because every
        rank is independently computable — any subrange yields exactly
        the entries the full iteration would at those ranks.
        """
        if stop_rank is None:
            stop_rank = self.list_size
        if not 1 <= start_rank <= self.list_size:
            raise ValueError(f"start rank {start_rank} outside [1, {self.list_size}]")
        if not start_rank - 1 <= stop_rank <= self.list_size:
            raise ValueError(f"stop rank {stop_rank} outside [{start_rank - 1}, {self.list_size}]")
        for rank in range(start_rank, stop_rank + 1):
            yield self.domain_at(rank)

    def generate(self) -> List[TrancoDomain]:
        """Build the full list (a wrapper over :meth:`iter_domains`)."""
        return list(self.iter_domains())

    def quic_domains(self) -> List[TrancoDomain]:
        """Only the entries that answer QUIC."""
        return [d for d in self.iter_domains() if d.answers_quic]

    def expected_quic_count(self) -> int:
        return sum(self.scaled_count(cdn) for cdn in Cdn)
