"""Synthetic macroscopic Internet for the wild measurements.

The paper probes the Tranco Top 1M with QScanner, maps contacted IPs
to ASes and CDNs (Table 5), classifies instant ACK deployment
(Table 1), studies ACK→ServerHello delays per CDN and vantage point
(Figures 8, 14), acknowledgment-delay fields (Figure 10, Appendix D),
and runs a one-week longitudinal study against Cloudflare (Figures 9
and 15).

Offline, the live Internet is replaced by a generative model fitted to
the paper's published aggregates: a Tranco-like toplist with CDN
hosting shares, per-CDN instant-ACK deployment shares and backend
delays, per-vantage-point RTT distributions, and a Cloudflare edge
with certificate caching and a diurnal backend-delay cycle. The
*analysis pipeline* — prober, dissector, classification, statistics —
is the same code a live measurement would use.
"""

from repro.wild.asdb import CDN_AS_NUMBERS, AsDatabase, Cdn
from repro.wild.cdn import DEPLOYMENTS, CdnDeployment, deployment_for
from repro.wild.cloudflare import CloudflareLongitudinalStudy
from repro.wild.dissector import DissectedHandshake, dissect
from repro.wild.qscanner import ProbeResult, QScanner
from repro.wild.tranco import TrancoDomain, TrancoGenerator
from repro.wild.vantage import VANTAGE_POINTS, VantagePoint

__all__ = [
    "Cdn",
    "CDN_AS_NUMBERS",
    "AsDatabase",
    "TrancoGenerator",
    "TrancoDomain",
    "CdnDeployment",
    "DEPLOYMENTS",
    "deployment_for",
    "VantagePoint",
    "VANTAGE_POINTS",
    "QScanner",
    "ProbeResult",
    "CloudflareLongitudinalStudy",
    "DissectedHandshake",
    "dissect",
]
