"""QScanner-style prober.

"We perform QUIC handshakes and HTTP/3 HEAD requests using QScanner
[30] ... We then map the contacted IP addresses to ASes and on-net CDN
deployments" (§3). "We check for instant ACK behavior, i.e., whether
the ClientHello is followed by a separate (server) ACK preceding the
TLS ServerHello" (§4.3).

The prober has three engines:

* the default **analytic engine**, which samples each handshake from
  the fitted CDN deployment models with one dedicated rng per domain
  (the reference implementation);
* the **batch engine** (:meth:`QScanner.probe_batch`), which samples
  the identical per-domain distributions from a single per-pass rng
  stream and precomputes the per-(vantage, day, CDN) share bias once
  instead of re-deriving it per domain. It is several times faster and
  statistically equivalent (cross-validated in the test suite), but
  draws different concrete samples than the analytic engine. A pass is
  deterministic in ``(seed, vantage, day, domain order)`` and must run
  whole inside one parallel task; and
* the **emulation engine** (``use_emulation=True``), which runs a full
  :mod:`repro.quic` handshake per domain on the discrete-event
  simulator — used on samples to cross-validate the analytic engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.interop.runner import Runner, Scenario
from repro.quic.server import ServerMode
from repro.wild.asdb import AsDatabase, Cdn
from repro.wild.cdn import CdnDeployment, deployment_for
from repro.wild.tranco import TrancoDomain
from repro.wild.vantage import VantagePoint


@dataclass(frozen=True, slots=True)
class ProbeResult:
    """One probed domain, as the paper's dissector would record it."""

    domain: str
    rank: int
    address: str
    cdn: Cdn
    vantage: str
    day: int
    rtt_ms: float
    #: Separate ACK preceding the ServerHello observed?
    iack_observed: bool
    #: ACK and ServerHello coalesced in one datagram?
    coalesced: bool
    #: Delay between the first ACK and the ServerHello [ms]; 0.0 for
    #: coalesced ACK–SH (Figure 8 plots coalesced as 0 delay).
    ack_to_sh_delay_ms: float
    #: The acknowledgment-delay field of the first ACK [ms] (Fig. 10).
    ack_delay_field_ms: float

    @property
    def ack_delay_minus_rtt_ms(self) -> float:
        """Figure 10's x-axis: RTT minus ack delay, negated here as
        (ack_delay - rtt) for directness."""
        return self.ack_delay_field_ms - self.rtt_ms


class QScanner:
    """Probes toplist domains from a vantage point."""

    def __init__(
        self,
        vantage: VantagePoint,
        seed: int = 0,
        use_emulation: bool = False,
    ):
        self.vantage = vantage
        self.seed = seed
        self.use_emulation = use_emulation
        self.asdb = AsDatabase()

    def probe(
        self,
        domains: Iterable[TrancoDomain],
        day: int = 0,
    ) -> List[ProbeResult]:
        """Probe every QUIC-answering domain once."""
        results: List[ProbeResult] = []
        for domain in domains:
            if not domain.answers_quic:
                continue
            result = self.probe_one(domain, day=day)
            if result is not None:
                results.append(result)
        return results

    def probe_one(self, domain: TrancoDomain, day: int = 0) -> Optional[ProbeResult]:
        if domain.cdn is None or domain.address is None:
            return None
        deployment = deployment_for(domain.cdn)
        rng = random.Random(
            f"probe:{self.seed}:{self.vantage.name}:{day}:{domain.name}"
        )
        if self.use_emulation:
            return self._probe_emulated(domain, deployment, rng, day)
        return self._probe_analytic(domain, deployment, rng, day)

    # ------------------------------------------------------------------
    # batch engine
    # ------------------------------------------------------------------

    def probe_batch(
        self,
        domains: Iterable[TrancoDomain],
        day: int = 0,
    ) -> List[ProbeResult]:
        """Probe a full pass with the batch engine.

        Semantics match :meth:`probe` (same per-domain distributions,
        same vantage/day share bias); the sampling draws come from one
        per-pass stream, making the pass both deterministic and cheap —
        no per-domain ``random.Random`` construction. The share bias is
        the exact per-(vantage, day, CDN) value the analytic engine
        derives, computed once per pass.
        """
        if self.use_emulation:
            raise ValueError(
                "probe_batch samples the analytic model; a scanner built "
                "with use_emulation=True must use probe() so the "
                "emulation engine actually runs"
            )
        rng = random.Random(f"probe-batch:{self.seed}:{self.vantage.name}:{day}")
        bias_cache: Dict[Cdn, float] = {}
        results: List[ProbeResult] = []
        for domain in domains:
            if not domain.answers_quic:
                continue
            if domain.cdn is None or domain.address is None:
                continue
            cdn = domain.cdn
            deployment = deployment_for(cdn)
            bias = bias_cache.get(cdn)
            if bias is None:
                bias = random.Random(
                    f"bias:{self.vantage.name}:{day}:{cdn.value}"
                ).uniform(-1.0, 0.0)
                bias_cache[cdn] = bias
            results.append(
                self._sample_probe(domain, deployment, rng, day, bias)
            )
        return results

    def _sample_probe(
        self,
        domain: TrancoDomain,
        deployment: CdnDeployment,
        rng: random.Random,
        day: int,
        bias: float,
    ) -> ProbeResult:
        """One analytic-model probe with the bias precomputed and the
        rng supplied by the caller (shared by both sampling engines)."""
        rtt = self.vantage.sample_rtt_ms(domain.cdn, rng)
        iack_enabled = deployment.sample_iack_enabled(rng, bias=bias)
        cached = deployment.sample_cert_cached(rng, popularity=domain.popularity)
        backend_delay = deployment.sample_backend_delay_ms(rng)
        if not iack_enabled:
            # WFC server: single coalesced ACK–ServerHello after the
            # backend fetch (or cache hit).
            coalesced = True
            iack_observed = False
            delay = 0.0
        elif cached:
            # Certificate already on the frontend: ACK and SH coalesce
            # even with IACK enabled ("a strong indicator for
            # caching", §4.3).
            coalesced = True
            iack_observed = False
            delay = 0.0
        else:
            coalesced = False
            iack_observed = True
            delay = backend_delay
        ack_delay_field = deployment.sample_ack_delay_field_ms(
            rng, rtt, coalesced=coalesced
        )
        return ProbeResult(
            domain=domain.name,
            rank=domain.rank,
            address=domain.address,
            cdn=self.asdb.cdn_for_address(domain.address),
            vantage=self.vantage.name,
            day=day,
            rtt_ms=rtt,
            iack_observed=iack_observed,
            coalesced=coalesced,
            ack_to_sh_delay_ms=delay,
            ack_delay_field_ms=ack_delay_field,
        )

    # ------------------------------------------------------------------
    # analytic engine
    # ------------------------------------------------------------------

    def _probe_analytic(
        self,
        domain: TrancoDomain,
        deployment: CdnDeployment,
        rng: random.Random,
        day: int,
    ) -> ProbeResult:
        # Vantage/day bias shifts the observed deployment share —
        # Amazon varies by up to 18 % across vantage points (Table 1).
        # The paper reports the *maximum* share across measurements,
        # so the bias only lowers the share from its tabled value.
        bias_rng = random.Random(f"bias:{self.vantage.name}:{day}:{domain.cdn.value}")
        bias = bias_rng.uniform(-1.0, 0.0)
        return self._sample_probe(domain, deployment, rng, day, bias)

    # ------------------------------------------------------------------
    # emulation engine (cross-validation on samples)
    # ------------------------------------------------------------------

    def _probe_emulated(
        self,
        domain: TrancoDomain,
        deployment: CdnDeployment,
        rng: random.Random,
        day: int,
    ) -> ProbeResult:
        rtt = self.vantage.sample_rtt_ms(domain.cdn, rng)
        bias_rng = random.Random(f"bias:{self.vantage.name}:{day}:{domain.cdn.value}")
        iack_enabled = deployment.sample_iack_enabled(
            rng, bias=bias_rng.uniform(-1.0, 0.0)
        )
        cached = deployment.sample_cert_cached(rng, popularity=domain.popularity)
        backend_delay = 0.0 if cached else deployment.sample_backend_delay_ms(rng)
        scenario = Scenario(
            client="quic-go",
            mode=ServerMode.IACK if iack_enabled else ServerMode.WFC,
            http="h3",
            rtt_ms=rtt,
            delta_t_ms=backend_delay,
        )
        run = Runner(base_seed=rng.randrange(1 << 30)).run_once(scenario)
        stats = run.client_stats
        first_ack = stats.relative(stats.first_ack_received_ms)
        sh = stats.relative(stats.server_hello_received_ms)
        coalesced = bool(stats.first_ack_coalesced_with_sh)
        iack_observed = not coalesced and first_ack is not None and sh is not None
        delay = 0.0
        if iack_observed and first_ack is not None and sh is not None:
            delay = max(0.0, sh - first_ack)
        ack_delay_field = deployment.sample_ack_delay_field_ms(
            rng, rtt, coalesced=coalesced
        )
        return ProbeResult(
            domain=domain.name,
            rank=domain.rank,
            address=domain.address,
            cdn=self.asdb.cdn_for_address(domain.address),
            vantage=self.vantage.name,
            day=day,
            rtt_ms=rtt,
            iack_observed=iack_observed,
            coalesced=coalesced,
            ack_to_sh_delay_ms=delay,
            ack_delay_field_ms=ack_delay_field,
        )


def scan_with_engine(
    scanner: "QScanner",
    domains: Iterable[TrancoDomain],
    day: int = 0,
    engine: str = "analytic",
) -> List[ProbeResult]:
    """Dispatch a scan pass to the named engine, rejecting unknown
    names (a typo must not silently fall back to the analytic engine)."""
    if engine == "batch":
        return scanner.probe_batch(domains, day=day)
    if engine == "analytic":
        return scanner.probe(domains, day=day)
    raise ValueError(f"unknown scan engine {engine!r}")


def deployment_share(results: Iterable[ProbeResult]) -> Dict[Cdn, float]:
    """Share of domains per CDN with instant ACK observed (Table 1).

    A domain counts as IACK-deployed when any of its probes observed a
    separate ACK preceding the ServerHello.
    """
    per_domain: Dict[str, tuple] = {}
    for result in results:
        prior = per_domain.get(result.domain)
        observed = result.iack_observed or (prior[1] if prior else False)
        per_domain[result.domain] = (result.cdn, observed)
    counts: Dict[Cdn, List[int]] = {}
    for cdn, observed in per_domain.values():
        bucket = counts.setdefault(cdn, [0, 0])
        bucket[0] += 1
        bucket[1] += 1 if observed else 0
    return {
        cdn: (bucket[1] / bucket[0] if bucket[0] else 0.0)
        for cdn, bucket in counts.items()
    }
