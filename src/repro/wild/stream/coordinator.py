"""The streaming scan coordinator: flat memory, any backend, resumable.

:class:`StreamCoordinator` turns a :class:`ScanRequest` into shard
tasks and pumps them through an existing
:class:`~repro.runtime.backend.ExecutionBackend` in bounded *waves*:
at most ``window`` shards are in flight or buffered at any moment, and
a completed shard's :class:`~repro.wild.stream.sketch.ScanSketch` is
merged into the running total and dropped. Coordinator memory is
O(window x sketch) + O(shard count x 2 ints) — independent of the
target count, which is what lets one process drive a million-target
scan with the same RSS as a hundred-thousand-target one.

Durability reuses the PR 6/PR 8 machinery verbatim:

* every completed shard is journaled through the backend's
  result-observer hook into a :class:`~repro.runtime.checkpoint
  .SuiteCheckpoint` whose manifest is pinned to
  :func:`scan_fingerprint` — ``repro scan --resume DIR`` after a
  coordinator SIGKILL replays the journal and dispatches only the
  remainder, and because sketch merge is exactly order-independent
  the resumed summary is byte-identical to an uninterrupted run's;
* the content-addressed :class:`~repro.runtime.disk_cache
  .DiskResultCache` is consulted per shard before dispatch and fed
  after, so a re-scan over unchanged targets is served from disk.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidOverride
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts
from repro.runtime.backend import ExecutionBackend
from repro.runtime.checkpoint import SuiteCheckpoint
from repro.runtime.disk_cache import DiskResultCache
from repro.runtime.events import (
    EventSink,
    ScanCompleted,
    ShardCompleted,
    ShardDispatched,
    emit,
)
from repro.wild.asdb import Cdn
from repro.wild.stream.shard import SHARD_CODE_VERSION, ShardOutcome, ShardProbeTask
from repro.wild.stream.sketch import DEFAULT_ALPHA, SKETCH_VERSION, ScanSketch
from repro.wild.stream.source import shard_ranges, source_from_spec
from repro.wild.vantage import VANTAGE_POINTS

__all__ = [
    "ScanReport",
    "ScanRequest",
    "StreamCoordinator",
    "scan_fingerprint",
]

#: Default targets per shard: big enough that dispatch overhead
#: amortizes, small enough that a shard's probe lists stay cheap on a
#: worker and the resume granularity is useful.
DEFAULT_SHARD_SIZE = 5_000

PROBE_ENGINES = ("analytic", "batch")


@dataclass(frozen=True)
class ScanRequest:
    """Everything that identifies one streaming scan.

    ``source`` is a :meth:`~repro.wild.stream.source.TargetSource.spec`
    document (JSON-safe), so requests cross the service wire as-is.
    """

    source: Dict[str, Any]
    shard_size: int = DEFAULT_SHARD_SIZE
    vantage_names: Optional[Tuple[str, ...]] = None
    days: int = 1
    seed: int = 0
    probe_engine: str = "analytic"
    alpha: float = DEFAULT_ALPHA

    def validated(self) -> "ScanRequest":
        source_from_spec(self.source)  # raises InvalidOverride on bad specs
        if self.shard_size <= 0:
            raise InvalidOverride("shard size must be positive")
        if self.days <= 0:
            raise InvalidOverride("a scan needs at least one day")
        if self.probe_engine not in PROBE_ENGINES:
            raise InvalidOverride(
                f"unknown probe engine {self.probe_engine!r}; expected one of {PROBE_ENGINES}"
            )
        for name in self.resolved_vantages():
            if name not in VANTAGE_POINTS:
                raise InvalidOverride(
                    f"unknown vantage point {name!r}; expected one of {sorted(VANTAGE_POINTS)}"
                )
        if not 0.0 < self.alpha < 1.0:
            raise InvalidOverride("sketch alpha must be in (0, 1)")
        return self

    def resolved_vantages(self) -> Tuple[str, ...]:
        if self.vantage_names is None:
            return tuple(sorted(VANTAGE_POINTS))
        return tuple(self.vantage_names)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": dict(self.source),
            "shard_size": self.shard_size,
            "vantage_names": (
                None if self.vantage_names is None else list(self.vantage_names)
            ),
            "days": self.days,
            "seed": self.seed,
            "probe_engine": self.probe_engine,
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ScanRequest":
        if not isinstance(doc, dict) or not isinstance(doc.get("source"), dict):
            raise InvalidOverride("scan request document needs a 'source' spec dict")
        vantages = doc.get("vantage_names")
        return cls(
            source=dict(doc["source"]),
            shard_size=int(doc.get("shard_size", DEFAULT_SHARD_SIZE)),
            vantage_names=None if vantages is None else tuple(str(v) for v in vantages),
            days=int(doc.get("days", 1)),
            seed=int(doc.get("seed", 0)),
            probe_engine=str(doc.get("probe_engine", "analytic")),
            alpha=float(doc.get("alpha", DEFAULT_ALPHA)),
        ).validated()


def scan_fingerprint(request: ScanRequest) -> str:
    """Content-address one scan: everything that determines what a
    shard index means, including the sketch and shard code versions —
    a checkpoint journaled by different semantics must not resume."""
    doc = {
        "kind": "wild-stream-scan",
        "shard_code_version": SHARD_CODE_VERSION,
        "sketch_version": SKETCH_VERSION,
        "source": request.source,
        "shard_size": request.shard_size,
        "vantage_names": list(request.resolved_vantages()),
        "days": request.days,
        "seed": request.seed,
        "probe_engine": request.probe_engine,
        "alpha": request.alpha,
    }
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass
class ScanReport:
    """The result of one streaming scan.

    :meth:`summary` is deterministic in the scan identity and merged
    sketch — two scans of the same request render byte-identical JSON
    regardless of sharding interleave, resume history, or cache hits.
    The execution :meth:`accounting` (what ran vs. what was served from
    journal/cache, wall time) deliberately lives outside the summary.
    """

    request: ScanRequest
    sketch: ScanSketch
    total_shards: int
    executed_shards: int = 0
    cached_shards: int = 0
    resumed_shards: int = 0
    duration_s: float = 0.0
    fingerprint: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        return {
            "scan": {
                "fingerprint": self.fingerprint,
                "source": dict(self.request.source),
                "shard_size": self.request.shard_size,
                "shards": self.total_shards,
                "vantage_names": list(self.request.resolved_vantages()),
                "days": self.request.days,
                "seed": self.request.seed,
                "probe_engine": self.request.probe_engine,
            },
            "sketch": self.sketch.summary(),
        }

    def accounting(self) -> Dict[str, Any]:
        return {
            "executed_shards": self.executed_shards,
            "cached_shards": self.cached_shards,
            "resumed_shards": self.resumed_shards,
            "duration_s": round(self.duration_s, 3),
        }

    def to_json(self) -> str:
        return json.dumps(self.summary(), indent=2, sort_keys=True) + "\n"

    def deployment_measurements(self) -> List[Dict[Cdn, float]]:
        """Per-(vantage, day) IACK share dicts in the same order
        table1's in-memory path builds them — its cross-validation
        bridge (exact: integer tallies divided identically)."""
        shares = self.sketch.deployment_shares()
        out: List[Dict[Cdn, float]] = []
        for vantage_name in self.request.resolved_vantages():
            for day in range(self.request.days):
                pass_shares = shares.get((vantage_name, day), {})
                out.append({Cdn(value): share for value, share in pass_shares.items()})
        return out

    def render(self) -> str:
        doc = self.summary()
        lines = [
            f"scan {doc['scan']['source']['kind']}: "
            f"{self.sketch.targets} targets, {self.sketch.quic_targets} QUIC, "
            f"{self.sketch.probes} probes "
            f"({len(doc['scan']['vantage_names'])} vantages x {self.request.days} days)",
            f"shards: {self.total_shards} total, {self.executed_shards} executed, "
            f"{self.cached_shards} disk-cached, {self.resumed_shards} resumed "
            f"in {self.duration_s:.1f}s",
            "",
            f"{'CDN':<12} {'domains':>9} {'IACK':>9} {'share %':>8}",
        ]
        for cdn_value, row in doc["sketch"]["cdns"].items():
            lines.append(
                f"{cdn_value:<12} {row['domains']:>9} {row['iack_domains']:>9} "
                f"{row['share_pct']:>8.2f}"
            )
        lines.append("")
        lines.append(f"{'metric':<22} {'p50':>9} {'p90':>9} {'p99':>9} {'max':>9}")
        for metric, row in doc["sketch"]["metrics"].items():
            cells = [
                "-" if row[q] is None else f"{row[q]:.2f}" for q in ("p50", "p90", "p99", "max")
            ]
            lines.append(
                f"{metric:<22} {cells[0]:>9} {cells[1]:>9} {cells[2]:>9} {cells[3]:>9}"
            )
        return "\n".join(lines)


class StreamCoordinator:
    """Dispatches one scan over an execution backend in bounded waves.

    The coordinator does not own the backend — sessions hand theirs
    in — but it does own the scan's checkpoint and event flow. One
    coordinator instance runs one scan (:meth:`run` is not reentrant).
    """

    def __init__(
        self,
        backend: ExecutionBackend,
        request: ScanRequest,
        *,
        checkpoint_dir: Optional[str] = None,
        disk_cache: Optional[DiskResultCache] = None,
        sink: Optional[EventSink] = None,
        window: Optional[int] = None,
    ):
        self.backend = backend
        self.request = request.validated()
        self.checkpoint_dir = checkpoint_dir
        self.disk_cache = disk_cache
        self.sink = sink
        if window is not None and window < 1:
            raise InvalidOverride("in-flight shard window must be >= 1")
        self._window = window
        self.fingerprint = scan_fingerprint(self.request)

    # -- shard plumbing -------------------------------------------------

    def _task(self, shard_index: int, start: int, stop: int) -> ShardProbeTask:
        return ShardProbeTask(
            source_spec=self.request.source,
            start=start,
            stop=stop,
            shard_index=shard_index,
            vantage_names=self.request.resolved_vantages(),
            days=self.request.days,
            probe_seed=self.request.seed,
            probe_engine=self.request.probe_engine,
            alpha=self.request.alpha,
        )

    def window(self) -> int:
        """In-flight shard bound: explicit, or 2 waves per slot."""
        if self._window is not None:
            return self._window
        return max(2, 2 * max(1, self.backend.parallelism()))

    @staticmethod
    def _waves(pending: Sequence[int], window: int) -> Iterator[List[int]]:
        for start in range(0, len(pending), window):
            yield list(pending[start : start + window])

    def _usable_outcome(self, artifacts: Optional[RunArtifacts]) -> Optional[ShardOutcome]:
        if isinstance(artifacts, ShardOutcome) and isinstance(artifacts.sketch, ScanSketch):
            if artifacts.sketch.version == SKETCH_VERSION:
                return artifacts
        return None

    # -- the scan -------------------------------------------------------

    def run(self) -> ScanReport:
        started = time.perf_counter()
        request = self.request
        source = source_from_spec(request.source)
        ranges = shard_ranges(source.size, request.shard_size)
        total_shards = len(ranges)
        sketch = ScanSketch(alpha=request.alpha)
        report = ScanReport(
            request=request,
            sketch=sketch,
            total_shards=total_shards,
            fingerprint=self.fingerprint,
        )

        checkpoint: Optional[SuiteCheckpoint] = None
        done = 0
        pending: List[int] = []
        if self.checkpoint_dir is not None:
            checkpoint = SuiteCheckpoint(self.checkpoint_dir)
            journaled = checkpoint.load_or_init(
                self.fingerprint,
                meta={"kind": "wild-stream-scan", "request": request.to_dict()},
            )
            for shard_index in range(total_shards):
                outcome = self._usable_outcome(journaled.get(shard_index))
                if outcome is None:
                    pending.append(shard_index)
                    continue
                sketch.merge(outcome.sketch)
                report.resumed_shards += 1
                done += 1
                start, stop = ranges[shard_index]
                emit(
                    self.sink,
                    ShardCompleted(
                        shard_index=shard_index,
                        targets=stop - start,
                        completed_shards=done,
                        total_shards=total_shards,
                        source="checkpoint",
                    ),
                )
        else:
            pending = list(range(total_shards))

        observer = checkpoint.record if checkpoint is not None else None
        self.backend.set_result_observer(observer)
        try:
            for wave in self._waves(pending, self.window()):
                to_run: List[Tuple[int, ShardProbeTask, Optional[str]]] = []
                for shard_index in wave:
                    start, stop = ranges[shard_index]
                    task = self._task(shard_index, start, stop)
                    key = None
                    if self.disk_cache is not None:
                        key = self.disk_cache.fingerprint(
                            task, request.seed, ArtifactLevel.STATS
                        )
                        outcome = self._usable_outcome(self.disk_cache.get(key))
                        if outcome is not None:
                            sketch.merge(outcome.sketch)
                            report.cached_shards += 1
                            done += 1
                            # Journal the hit too: a resume must not
                            # depend on the cache still being attached.
                            if checkpoint is not None:
                                checkpoint.record([(shard_index, outcome)])
                            emit(
                                self.sink,
                                ShardCompleted(
                                    shard_index=shard_index,
                                    targets=stop - start,
                                    completed_shards=done,
                                    total_shards=total_shards,
                                    source="disk_cache",
                                ),
                            )
                            continue
                    to_run.append((shard_index, task, key))
                if not to_run:
                    continue
                for shard_index, task, _key in to_run:
                    start, stop = ranges[shard_index]
                    emit(
                        self.sink,
                        ShardDispatched(
                            shard_index=shard_index,
                            targets=stop - start,
                            total_shards=total_shards,
                        ),
                    )
                cells = [(shard_index, task, request.seed) for shard_index, task, _ in to_run]
                results = self.backend.run_cells(cells, ArtifactLevel.STATS.value, chunk_size=1)
                keys = {shard_index: key for shard_index, _task, key in to_run}
                for shard_index, artifacts in sorted(results):
                    outcome = self._usable_outcome(artifacts)
                    if outcome is None:
                        raise InvalidOverride(
                            f"shard {shard_index} returned "
                            f"{type(artifacts).__name__}, not a usable ShardOutcome"
                        )
                    sketch.merge(outcome.sketch)
                    report.executed_shards += 1
                    done += 1
                    if self.disk_cache is not None:
                        self.disk_cache.put(keys.get(shard_index), outcome)
                    start, stop = ranges[shard_index]
                    emit(
                        self.sink,
                        ShardCompleted(
                            shard_index=shard_index,
                            targets=stop - start,
                            completed_shards=done,
                            total_shards=total_shards,
                            source="executed",
                        ),
                    )
        finally:
            self.backend.set_result_observer(None)

        report.duration_s = time.perf_counter() - started
        emit(
            self.sink,
            ScanCompleted(
                targets=sketch.targets,
                probes=sketch.probes,
                shards=total_shards,
                executed_shards=report.executed_shards,
                cached_shards=report.cached_shards,
                resumed_shards=report.resumed_shards,
            ),
        )
        return report
