"""Shard probe tasks — scan work shaped like runtime cells.

The streaming pipeline ships no new wire protocol: a shard is
dispatched as an ordinary cell ``(shard_index, ShardProbeTask, seed)``
through whichever :class:`~repro.runtime.backend.ExecutionBackend` the
session runs — process pool or authenticated socket fleet — and every
runtime feature (scheduler requeue, speculation, elastic membership,
worker result cache, checkpoint journal, durable disk cache) applies
unchanged. Two small duck-typed hooks make that work:

* :meth:`ShardProbeTask.execute_task` — recognized by
  :func:`repro.runtime.artifacts.execute_cell` in place of a simulator
  run;
* :meth:`ShardProbeTask.task_key` — recognized by
  :func:`repro.runtime.cache.scenario_key` as the task's value
  identity, keying both the worker memo and the durable disk cache.

A task carries only its source *spec* and rank range (a few hundred
bytes); the worker regenerates its targets locally, probes every
``vantage × day`` pass, and folds everything into one
:class:`~repro.wild.stream.sketch.ScanSketch` returned inside a
:class:`ShardOutcome`. Peak worker memory is O(shard size); nothing
proportional to the full target count exists anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.runtime.artifacts import ArtifactLevel, RunArtifacts
from repro.wild.qscanner import QScanner, scan_with_engine
from repro.wild.stream.sketch import SKETCH_VERSION, ScanSketch
from repro.wild.stream.source import source_from_spec
from repro.wild.vantage import vantage

#: Bump when shard execution semantics change — part of task_key, so
#: cached outcomes from older code never serve a newer scan.
SHARD_CODE_VERSION = 1


@dataclass(slots=True)
class ShardOutcome(RunArtifacts):
    """One shard's merged sketch, dressed as :class:`RunArtifacts`.

    Subclassing keeps every artifacts consumer honest without special
    cases: the checkpoint journal pickles it, the disk cache's
    ``isinstance`` guard accepts it, and the wire ships it like any
    other cell result. The simulator-only fields ride along as
    ``None``.
    """

    sketch: Optional[ScanSketch] = field(default=None, repr=False)
    shard_index: int = -1
    shard_targets: int = 0


@dataclass(frozen=True)
class ShardProbeTask:
    """One rank-range's probe workload (all vantage × day passes).

    Frozen and tiny: the wire form is the source spec plus scalars.
    Execution is deterministic in ``task_key()`` — the analytic engine
    keys every probe rng by ``(seed, vantage, day, domain)``, so a
    shard's sketch is independent of worker, arrival order, and
    sharding geometry.
    """

    source_spec: Dict[str, Any]
    start: int
    stop: int
    shard_index: int
    vantage_names: Tuple[str, ...]
    days: int
    probe_seed: int
    probe_engine: str = "analytic"
    alpha: float = 0.01

    def task_key(self) -> Tuple[Any, ...]:
        """Value identity for the runtime caches (see
        :func:`repro.runtime.cache.scenario_key`)."""
        return (
            "wild-stream-shard",
            SHARD_CODE_VERSION,
            SKETCH_VERSION,
            tuple(sorted(self.source_spec.items())),
            self.start,
            self.stop,
            self.vantage_names,
            self.days,
            self.probe_seed,
            self.probe_engine,
            self.alpha,
        )

    def execute_task(self, seed: int, level: ArtifactLevel) -> ShardOutcome:
        """Probe the shard and fold it into a sketch (worker-side
        entry, called by :func:`~repro.runtime.artifacts.execute_cell`)."""
        started = time.perf_counter()
        source = source_from_spec(self.source_spec)
        sketch = ScanSketch(alpha=self.alpha)
        # Materializing the shard (never the list) keeps the batch
        # engine's one-rng-per-pass stream intact across passes.
        targets = list(source.iter_range(self.start, self.stop))
        quic_targets = []
        for domain in targets:
            sketch.observe_target(domain.cdn.value if domain.cdn is not None else None)
            if domain.answers_quic:
                quic_targets.append(domain)
        #: domain name → (cdn value, IACK observed in any pass)
        iack_any: Dict[str, Tuple[str, bool]] = {}
        for vantage_name in self.vantage_names:
            scanner = QScanner(vantage(vantage_name), seed=self.probe_seed)
            for day in range(self.days):
                for probe in scan_with_engine(
                    scanner, quic_targets, day=day, engine=self.probe_engine
                ):
                    sketch.observe_probe(probe)
                    prior = iack_any.get(probe.domain)
                    observed = probe.iack_observed or (prior[1] if prior else False)
                    iack_any[probe.domain] = (probe.cdn.value, observed)
        for cdn_value, observed in iack_any.values():
            sketch.observe_domain_iack(cdn_value, observed)
        return ShardOutcome(
            scenario=None,
            seed=seed,
            level=level,
            client_stats=None,
            server_stats=None,
            duration_ms=(time.perf_counter() - started) * 1000.0,
            sketch=sketch,
            shard_index=self.shard_index,
            shard_targets=len(targets),
        )
