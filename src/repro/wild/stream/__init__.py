"""Streaming wild-scan pipeline: millions of targets over the fleet.

The subsystem that turns the distributed runtime into a measurement
platform (ROADMAP "Planet-scale wild pipeline"): lazy
:class:`~repro.wild.stream.source.TargetSource` shards dispatched as
ordinary runtime cells, worker-side probing through
:class:`~repro.wild.qscanner.QScanner`, and exact order-independent
aggregation into :class:`~repro.wild.stream.sketch.ScanSketch`
summaries — with checkpoint resume and durable disk-cache reuse
riding the existing runtime machinery. Entry points:
``Session.scan()``, ``repro scan``.
"""

from repro.wild.stream.coordinator import (
    DEFAULT_SHARD_SIZE,
    ScanReport,
    ScanRequest,
    StreamCoordinator,
    scan_fingerprint,
)
from repro.wild.stream.shard import SHARD_CODE_VERSION, ShardOutcome, ShardProbeTask
from repro.wild.stream.sketch import METRICS, SKETCH_VERSION, QuantileSketch, ScanSketch
from repro.wild.stream.source import (
    SyntheticSource,
    TargetSource,
    TrancoSource,
    shard_ranges,
    source_from_spec,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "METRICS",
    "QuantileSketch",
    "SHARD_CODE_VERSION",
    "SKETCH_VERSION",
    "ScanReport",
    "ScanRequest",
    "ScanSketch",
    "ShardOutcome",
    "ShardProbeTask",
    "StreamCoordinator",
    "SyntheticSource",
    "TargetSource",
    "TrancoSource",
    "scan_fingerprint",
    "shard_ranges",
    "source_from_spec",
]
