"""Mergeable scan sketches — the coordinator-side aggregation state.

A streaming scan never holds full :class:`~repro.wild.qscanner
.ProbeResult` lists: every shard folds its probes into a
:class:`ScanSketch` worker-side, the coordinator merges shard sketches
as they arrive, and the final summary is read off the merged sketch.

The merge is **exactly order-independent**: all sketch state is either
integer counts (target/probe/per-CDN/per-pass tallies, the quantile
histogram bins) or exact float ``min``/``max`` — no floating-point
sums whose rounding would depend on arrival order. Two scans that
cover the same shards therefore produce *byte-identical* summaries no
matter how the fleet interleaved them, which is what lets the
resume drill assert equality instead of tolerance.

Percentiles use a DDSketch-style log-spaced histogram
(:class:`QuantileSketch`): a value lands in bin
``ceil(log_gamma(value))`` with ``gamma = (1+alpha)/(1-alpha)``, so
any quantile estimate is within relative error ``alpha`` (default 1%)
of the true order statistic — the documented sketch tolerance. Counts
and deployment shares are exact (they are pure integer tallies).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Bump when the sketch state or summary layout changes — part of every
#: scan fingerprint and disk-cache key, so stale shard outcomes never
#: merge into a newer scan.
SKETCH_VERSION = 1

#: The probe metrics every scan sketches.
METRICS = ("rtt_ms", "ack_to_sh_delay_ms", "ack_delay_field_ms")

#: Default relative accuracy of quantile estimates (1%).
DEFAULT_ALPHA = 0.01

#: Values at or below this are tallied in the exact zero bucket
#: (coalesced ACK–SH delays are exactly 0.0 and common).
_ZERO_EPSILON = 1e-9


class QuantileSketch:
    """DDSketch-style log-binned quantile sketch over ``[0, inf)``.

    State is a ``{bin_index: count}`` dict plus an exact zero bucket
    and exact ``min``/``max``; :meth:`merge` adds counts bin-wise, so
    merging is commutative, associative, and exact.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "bins", "zero_count", "count", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.bins: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"quantile sketch values must be >= 0, got {value}")
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= _ZERO_EPSILON:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.bins[index] = self.bins.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge quantile sketches with different accuracy "
                f"({self.alpha} vs {other.alpha})"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        for index, n in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + n
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile estimate (relative error <= ``alpha``),
        clamped into the exact observed ``[min, max]``; ``None`` when
        the sketch is empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * (self.count - 1)
        seen = self.zero_count
        if rank < seen:
            return 0.0
        estimate = self.max
        for index in sorted(self.bins):
            seen += self.bins[index]
            if rank < seen:
                # Midpoint of the bin (gamma^(i-1), gamma^i].
                estimate = 2.0 * self._gamma**index / (self._gamma + 1.0)
                break
        return min(max(estimate, self.min), self.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "bins": {str(index): n for index, n in sorted(self.bins.items())},
            "zero_count": self.zero_count,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(alpha=float(doc["alpha"]))
        sketch.bins = {int(index): int(n) for index, n in doc.get("bins", {}).items()}
        sketch.zero_count = int(doc.get("zero_count", 0))
        sketch.count = int(doc.get("count", 0))
        sketch.min = doc.get("min")
        sketch.max = doc.get("max")
        return sketch


#: One per-pass tally key: (vantage name, day, cdn value).
PassKey = Tuple[str, int, str]


class ScanSketch:
    """The complete mergeable aggregation state of one scan.

    Folds :class:`~repro.wild.qscanner.ProbeResult`-shaped probes and
    per-domain facts into integer tallies plus per-metric
    :class:`QuantileSketch` histograms. All counts are exact; only
    quantile *estimates* carry the ``alpha`` relative error.
    """

    __slots__ = (
        "version",
        "alpha",
        "targets",
        "quic_targets",
        "probes",
        "iack_probes",
        "coalesced_probes",
        "cdn_domains",
        "cdn_iack_domains",
        "pass_domains",
        "pass_iack",
        "quantiles",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.version = SKETCH_VERSION
        self.alpha = alpha
        self.targets = 0  # every rank scanned, QUIC or not
        self.quic_targets = 0
        self.probes = 0
        self.iack_probes = 0
        self.coalesced_probes = 0
        self.cdn_domains: Dict[str, int] = {}
        #: Domains with IACK observed in *any* pass (per-domain OR,
        #: computed shard-side where all of a domain's passes live).
        self.cdn_iack_domains: Dict[str, int] = {}
        self.pass_domains: Dict[PassKey, int] = {}
        self.pass_iack: Dict[PassKey, int] = {}
        self.quantiles: Dict[str, QuantileSketch] = {
            metric: QuantileSketch(alpha) for metric in METRICS
        }

    # -- folding (shard-side) -------------------------------------------

    def observe_target(self, cdn_value: Optional[str]) -> None:
        """Count one toplist entry (``cdn_value`` None = no QUIC)."""
        self.targets += 1
        if cdn_value is not None:
            self.quic_targets += 1
            self.cdn_domains[cdn_value] = self.cdn_domains.get(cdn_value, 0) + 1

    def observe_probe(self, probe: Any) -> None:
        """Fold one probe (any object with the ProbeResult fields)."""
        self.probes += 1
        cdn_value = probe.cdn.value
        key = (probe.vantage, probe.day, cdn_value)
        self.pass_domains[key] = self.pass_domains.get(key, 0) + 1
        if probe.iack_observed:
            self.iack_probes += 1
            self.pass_iack[key] = self.pass_iack.get(key, 0) + 1
        if probe.coalesced:
            self.coalesced_probes += 1
        self.quantiles["rtt_ms"].add(probe.rtt_ms)
        self.quantiles["ack_to_sh_delay_ms"].add(probe.ack_to_sh_delay_ms)
        self.quantiles["ack_delay_field_ms"].add(probe.ack_delay_field_ms)

    def observe_domain_iack(self, cdn_value: str, observed_any: bool) -> None:
        """Record one domain's OR-over-all-passes IACK verdict."""
        if observed_any:
            self.cdn_iack_domains[cdn_value] = self.cdn_iack_domains.get(cdn_value, 0) + 1

    # -- merging (coordinator-side) -------------------------------------

    def merge(self, other: "ScanSketch") -> None:
        if other.version != self.version:
            raise ValueError(
                f"cannot merge sketch version {other.version} into {self.version}"
            )
        if other.alpha != self.alpha:
            raise ValueError("cannot merge sketches with different quantile accuracy")
        self.targets += other.targets
        self.quic_targets += other.quic_targets
        self.probes += other.probes
        self.iack_probes += other.iack_probes
        self.coalesced_probes += other.coalesced_probes
        for table_name in ("cdn_domains", "cdn_iack_domains", "pass_domains", "pass_iack"):
            mine = getattr(self, table_name)
            theirs = getattr(other, table_name)
            for key, n in theirs.items():
                mine[key] = mine.get(key, 0) + n
        for metric, sketch in other.quantiles.items():
            self.quantiles[metric].merge(sketch)

    @classmethod
    def merged(cls, sketches: Iterable["ScanSketch"], alpha: float = DEFAULT_ALPHA) -> "ScanSketch":
        total = cls(alpha)
        for sketch in sketches:
            total.merge(sketch)
        return total

    # -- reading ---------------------------------------------------------

    def deployment_shares(self) -> Dict[Tuple[str, int], Dict[str, float]]:
        """Per-(vantage, day) IACK deployment share per CDN — exactly
        :func:`repro.wild.qscanner.deployment_share` applied to that
        pass's full probe list (each domain is probed once per pass, so
        the per-domain OR degenerates to the probe tally)."""
        shares: Dict[Tuple[str, int], Dict[str, float]] = {}
        for (vantage_name, day, cdn_value), domains in self.pass_domains.items():
            iack = self.pass_iack.get((vantage_name, day, cdn_value), 0)
            shares.setdefault((vantage_name, day), {})[cdn_value] = (
                iack / domains if domains else 0.0
            )
        return shares

    def summary(self) -> Dict[str, Any]:
        """The canonical JSON-safe scan summary.

        Deterministic in the sketch *state* (sorted keys, shares
        computed from integer tallies at read time), so equal sketches
        render byte-identical JSON.
        """
        cdns: Dict[str, Any] = {}
        for cdn_value in sorted(self.cdn_domains):
            domains = self.cdn_domains[cdn_value]
            iack = self.cdn_iack_domains.get(cdn_value, 0)
            cdns[cdn_value] = {
                "domains": domains,
                "iack_domains": iack,
                "share_pct": round(100.0 * iack / domains, 4) if domains else 0.0,
            }
        metrics: Dict[str, Any] = {}
        for metric in METRICS:
            sketch = self.quantiles[metric]
            metrics[metric] = {
                "count": sketch.count,
                "min": sketch.min,
                "p50": sketch.quantile(0.50),
                "p90": sketch.quantile(0.90),
                "p99": sketch.quantile(0.99),
                "max": sketch.max,
            }
        return {
            "sketch_version": self.version,
            "alpha": self.alpha,
            "targets": self.targets,
            "quic_targets": self.quic_targets,
            "probes": self.probes,
            "iack_probes": self.iack_probes,
            "coalesced_probes": self.coalesced_probes,
            "cdns": cdns,
            "metrics": metrics,
        }

    # -- wire form --------------------------------------------------------

    @staticmethod
    def _encode_pass_table(table: Dict[PassKey, int]) -> List[List[Any]]:
        return [
            [vantage_name, day, cdn_value, n]
            for (vantage_name, day, cdn_value), n in sorted(table.items())
        ]

    @staticmethod
    def _decode_pass_table(rows: Iterable[Iterable[Any]]) -> Dict[PassKey, int]:
        return {(str(v), int(d), str(c)): int(n) for v, d, c, n in rows}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sketch_version": self.version,
            "alpha": self.alpha,
            "targets": self.targets,
            "quic_targets": self.quic_targets,
            "probes": self.probes,
            "iack_probes": self.iack_probes,
            "coalesced_probes": self.coalesced_probes,
            "cdn_domains": dict(sorted(self.cdn_domains.items())),
            "cdn_iack_domains": dict(sorted(self.cdn_iack_domains.items())),
            "pass_domains": self._encode_pass_table(self.pass_domains),
            "pass_iack": self._encode_pass_table(self.pass_iack),
            "quantiles": {metric: self.quantiles[metric].to_dict() for metric in METRICS},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ScanSketch":
        version = int(doc.get("sketch_version", -1))
        if version != SKETCH_VERSION:
            raise ValueError(f"unsupported sketch version {version}")
        sketch = cls(alpha=float(doc["alpha"]))
        sketch.targets = int(doc["targets"])
        sketch.quic_targets = int(doc["quic_targets"])
        sketch.probes = int(doc["probes"])
        sketch.iack_probes = int(doc["iack_probes"])
        sketch.coalesced_probes = int(doc["coalesced_probes"])
        sketch.cdn_domains = {str(k): int(n) for k, n in doc["cdn_domains"].items()}
        sketch.cdn_iack_domains = {str(k): int(n) for k, n in doc["cdn_iack_domains"].items()}
        sketch.pass_domains = cls._decode_pass_table(doc["pass_domains"])
        sketch.pass_iack = cls._decode_pass_table(doc["pass_iack"])
        sketch.quantiles = {
            metric: QuantileSketch.from_dict(doc["quantiles"][metric]) for metric in METRICS
        }
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScanSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __getstate__(self) -> Dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        restored = ScanSketch.from_dict(state)
        for slot in ScanSketch.__slots__:
            setattr(self, slot, getattr(restored, slot))
