"""Lazy target sources for the streaming scan pipeline.

A :class:`TargetSource` never materializes its target list: it knows
its ``size``, yields any half-open index range on demand, and — the
property the whole pipeline leans on — describes itself as a tiny
JSON-safe ``spec()`` dict from which :func:`source_from_spec` rebuilds
an identical source *in another process*. Shards therefore travel the
wire as ``(spec, start, stop)`` descriptors of a few hundred bytes;
workers regenerate their targets locally, and the coordinator's memory
stays flat no matter how many targets the scan covers.

Determinism contract: for a fixed spec, ``iter_range(a, b)`` yields
exactly the entries positions ``a..b-1`` of the full iteration would —
shardings of the same source always cover the same targets.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Protocol, Tuple, runtime_checkable

from repro.errors import InvalidOverride
from repro.wild.asdb import AsDatabase, Cdn
from repro.wild.tranco import TrancoDomain, TrancoGenerator, _mix64


@runtime_checkable
class TargetSource(Protocol):
    """What the coordinator and shard tasks need from a target list."""

    @property
    def size(self) -> int:
        """Total number of targets (known up front, never materialized)."""
        ...

    def spec(self) -> Dict[str, Any]:
        """JSON-safe self-description; ``source_from_spec(spec())``
        rebuilds an identical source anywhere."""
        ...

    def iter_range(self, start: int, stop: int) -> Iterator[TrancoDomain]:
        """Targets at positions ``[start, stop)`` (0-based), lazily."""
        ...


class TrancoSource:
    """The paper's synthetic Tranco toplist as a streaming source.

    Position ``i`` is rank ``i + 1``; the Feistel-permuted
    :class:`~repro.wild.tranco.TrancoGenerator` makes any rank range
    O(range) to produce with no full-list state.
    """

    KIND = "tranco"

    def __init__(self, list_size: int = TrancoGenerator.PAPER_LIST_SIZE, seed: int = 20240806):
        self.generator = TrancoGenerator(list_size=list_size, seed=seed)

    @property
    def size(self) -> int:
        return self.generator.list_size

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "list_size": self.generator.list_size,
            "seed": self.generator.seed,
        }

    def iter_range(self, start: int, stop: int) -> Iterator[TrancoDomain]:
        _check_range(start, stop, self.size)
        if start == stop:
            return iter(())
        return self.generator.iter_domains(start + 1, stop)


class SyntheticSource:
    """A cheap seeded target population for scale and chaos drills.

    Each position hashes independently (SplitMix64 over
    ``position ^ seed``) to decide QUIC-ness and CDN, so generation is
    O(1) per target with no toplist bookkeeping — the source of choice
    for the million-target RSS-flatness and SIGKILL-resume drills where
    toplist fidelity is irrelevant but volume is the point.
    ``quic_permille`` controls the answering share (default 300‰,
    roughly the paper's Tranco ratio).
    """

    KIND = "synthetic"

    _CDNS: Tuple[Cdn, ...] = tuple(Cdn)

    def __init__(self, count: int, seed: int = 0, quic_permille: int = 300):
        if count <= 0:
            raise InvalidOverride("synthetic source needs a positive target count")
        if not 0 <= quic_permille <= 1000:
            raise InvalidOverride("quic_permille must be in [0, 1000]")
        self.count = count
        self.seed = seed
        self.quic_permille = quic_permille
        self._asdb = AsDatabase()
        self._asns = {cdn: self._asdb.asns_for_cdn(cdn) for cdn in self._CDNS}

    @property
    def size(self) -> int:
        return self.count

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "count": self.count,
            "seed": self.seed,
            "quic_permille": self.quic_permille,
        }

    def iter_range(self, start: int, stop: int) -> Iterator[TrancoDomain]:
        _check_range(start, stop, self.size)
        for position in range(start, stop):
            yield self._target_at(position)

    def _target_at(self, position: int) -> TrancoDomain:
        draw = _mix64(_mix64(position + 1) ^ _mix64(self.seed ^ 0x5EED))
        rank = position + 1
        name = f"synth{rank:08d}.test"
        if draw % 1000 >= self.quic_permille:
            return TrancoDomain(rank=rank, name=name, cdn=None, address=None)
        cdn = self._CDNS[(draw // 1000) % len(self._CDNS)]
        asns = self._asns[cdn]
        asn = asns[position % len(asns)]
        address = self._asdb.address_in_asn(asn, position)
        return TrancoDomain(rank=rank, name=name, cdn=cdn, address=address)


def _check_range(start: int, stop: int, size: int) -> None:
    if not 0 <= start <= stop <= size:
        raise InvalidOverride(f"target range [{start}, {stop}) outside [0, {size}]")


#: Registered source kinds: spec ``kind`` → builder taking the spec.
_SOURCE_KINDS: Dict[str, Callable[[Dict[str, Any]], TargetSource]] = {
    TrancoSource.KIND: lambda spec: TrancoSource(
        list_size=int(spec["list_size"]), seed=int(spec["seed"])
    ),
    SyntheticSource.KIND: lambda spec: SyntheticSource(
        count=int(spec["count"]),
        seed=int(spec["seed"]),
        quic_permille=int(spec.get("quic_permille", 300)),
    ),
}


def source_from_spec(spec: Dict[str, Any]) -> TargetSource:
    """Rebuild a source from its ``spec()`` document (wire/CLI entry)."""
    if not isinstance(spec, dict):
        raise InvalidOverride(f"target source spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    builder = _SOURCE_KINDS.get(kind)
    if builder is None:
        raise InvalidOverride(
            f"unknown target source kind {kind!r}; expected one of {sorted(_SOURCE_KINDS)}"
        )
    try:
        return builder(spec)
    except InvalidOverride:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidOverride(f"malformed {kind!r} source spec: {exc!r}")


def shard_ranges(size: int, shard_size: int) -> List[Tuple[int, int]]:
    """Split ``[0, size)`` into consecutive ``shard_size`` ranges (the
    last one ragged). A list of 2-tuples, not target data — 1M targets
    at shard 5k is 200 tuples."""
    if shard_size <= 0:
        raise InvalidOverride("shard size must be positive")
    return [(start, min(start + shard_size, size)) for start in range(0, size, shard_size)]
