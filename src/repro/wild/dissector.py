"""Packet dissector for response traffic.

"We run these measurements for one week, collect all response
traffic, and analyze the content using a packet dissector" (§3).
:func:`dissect` turns a simulated connection's packet trace into the
observables the wild pipeline consumes: first-ACK arrival, ServerHello
arrival, coalescing, and the ACK→SH delay. It operates on the
:class:`~repro.sim.trace.Tracer` records of an emulated handshake, so
the same function validates the analytic wild model against the full
QUIC stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.quic.coalescing import Datagram
from repro.quic.packet import PacketType
from repro.sim.trace import TraceRecord


@dataclass(frozen=True)
class DissectedHandshake:
    """What the dissector extracts from one connection's downlink."""

    first_ack_time_ms: Optional[float]
    server_hello_time_ms: Optional[float]
    coalesced_ack_sh: bool
    iack_observed: bool

    @property
    def ack_to_sh_delay_ms(self) -> Optional[float]:
        """Figure 8's metric; 0.0 when coalesced."""
        if self.coalesced_ack_sh:
            return 0.0
        if self.first_ack_time_ms is None or self.server_hello_time_ms is None:
            return None
        return self.server_hello_time_ms - self.first_ack_time_ms


def _is_server_hello(dgram: Datagram) -> bool:
    return any(
        frame.label.startswith("SH") or "SH" in frame.label.split(",")
        for packet in dgram.packets
        if packet.packet_type is PacketType.INITIAL
        for frame in packet.crypto_frames()
    )


def _has_initial_ack(dgram: Datagram) -> bool:
    return any(
        packet.ack_frames()
        for packet in dgram.packets
        if packet.packet_type is PacketType.INITIAL
    )


def dissect(
    downlink_records: Iterable[TraceRecord],
    delivered_only: bool = True,
) -> DissectedHandshake:
    """Dissect server→client trace records.

    Implements the paper's IACK detection: "whether the ClientHello is
    followed by a separate (server) ACK preceding the TLS ServerHello"
    (§4.3).
    """
    first_ack: Optional[float] = None
    first_ack_dgram: Optional[Datagram] = None
    sh_time: Optional[float] = None
    sh_dgram: Optional[Datagram] = None
    for record in downlink_records:
        if delivered_only and record.dropped:
            continue
        dgram = record.payload
        if not isinstance(dgram, Datagram):
            continue
        if first_ack is None and _has_initial_ack(dgram):
            first_ack = record.time_ms
            first_ack_dgram = dgram
        if sh_time is None and _is_server_hello(dgram):
            sh_time = record.time_ms
            sh_dgram = dgram
        if first_ack is not None and sh_time is not None:
            break
    coalesced = (
        first_ack_dgram is not None
        and sh_dgram is first_ack_dgram
    )
    iack = (
        first_ack is not None
        and sh_time is not None
        and not coalesced
        and first_ack <= sh_time
    )
    return DissectedHandshake(
        first_ack_time_ms=first_ack,
        server_hello_time_ms=sh_time,
        coalesced_ack_sh=coalesced,
        iack_observed=iack,
    )
