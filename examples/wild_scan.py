#!/usr/bin/env python3
"""Macroscopic scan: measure instant ACK deployment in the (synthetic)
wild, the way the paper's §4.3 does — as one ``repro.api`` job.

Runs the three wild-measurement experiments as a single session job:
IACK deployment per CDN (Table 1), ACK->ServerHello delays per CDN
(Figure 8), and the Cloudflare longitudinal study (Figure 9). Typed
run events stream progress, and the results land as a versioned JSON
bundle when ``--out`` is given.

    python examples/wild_scan.py [--domains 50000] [--vantage "Sao Paulo"]
"""

import argparse

from repro.api import RunRequest, Session


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=50_000,
                        help="toplist size (paper: 1,000,000)")
    parser.add_argument("--vantage", default="Sao Paulo")
    parser.add_argument("--study-days", type=int, default=2,
                        help="Cloudflare longitudinal study length")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the scan passes")
    parser.add_argument("--events", action="store_true",
                        help="stream run events while executing")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write the versioned result bundle here")
    args = parser.parse_args()

    request = RunRequest(
        experiments=("table1", "fig8", "fig9"),
        overrides={
            "table1": {
                "list_size": args.domains,
                "vantage_names": (args.vantage,),
                "days": 1,
                "workers": args.workers,
            },
            "fig8": {"list_size": args.domains, "vantage_name": args.vantage},
            "fig9": {"vantage_name": args.vantage, "days": args.study_days},
        },
    )
    on_event = None
    if args.events:
        on_event = lambda event: print(f"event: {event.describe()}", flush=True)  # noqa: E731

    with Session(on_event=on_event) as session:
        report = session.run(request)
        print(report.render())
        if args.out is not None:
            written = session.write_bundle(report, args.out)
            print(f"\nwrote {len(written)} bundle files under {args.out}")

    print(
        "\nThe paper's reading: Cloudflare deploys instant ACK fleet-wide,"
        "\nthe other CDNs barely at all (Table 1), and the ACK->SH gap is"
        "\nthe certificate-store delay delta_t the PTO model is built on."
    )


if __name__ == "__main__":
    main()
