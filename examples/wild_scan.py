#!/usr/bin/env python3
"""Macroscopic scan: measure instant ACK deployment in the (synthetic)
wild, the way the paper's §4.3 does.

Generates a Tranco-like toplist, probes every QUIC-answering domain
from a vantage point, classifies IACK deployment per CDN (Table 1),
summarizes ACK->ServerHello delays (Figure 8), and runs a short
Cloudflare longitudinal study (Figure 9).

    python examples/wild_scan.py [--domains 50000] [--vantage "Sao Paulo"]
"""

import argparse

from repro.analysis.render import render_table
from repro.analysis.stats import median, summarize
from repro.wild import (
    Cdn,
    CloudflareLongitudinalStudy,
    QScanner,
    TrancoGenerator,
)
from repro.wild.cloudflare import filter_valid
from repro.wild.qscanner import deployment_share
from repro.wild.vantage import vantage


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=50_000,
                        help="toplist size (paper: 1,000,000)")
    parser.add_argument("--vantage", default="Sao Paulo")
    parser.add_argument("--study-hours", type=int, default=12)
    args = parser.parse_args()

    point = vantage(args.vantage)
    generator = TrancoGenerator(list_size=args.domains)
    domains = generator.quic_domains()
    print(f"toplist: {args.domains} domains, {len(domains)} answer QUIC")

    scanner = QScanner(point)
    results = scanner.probe(domains)
    shares = deployment_share(results)
    rows = []
    for cdn in Cdn:
        cdn_results = [r for r in results if r.cdn is cdn]
        if not cdn_results:
            continue
        delays = [r.ack_to_sh_delay_ms for r in cdn_results if r.iack_observed]
        rows.append([
            cdn.value,
            len(cdn_results),
            f"{shares.get(cdn, 0.0) * 100:.1f}",
            f"{median(delays):.1f}" if delays else "-",
        ])
    print()
    print(render_table(
        ["CDN", "domains", "IACK enabled [%]", "median ACK->SH [ms]"],
        rows,
        title=f"IACK deployment seen from {args.vantage}",
    ))

    print(f"\nCloudflare longitudinal study ({args.study_hours} h):")
    study = CloudflareLongitudinalStudy(point)
    samples = filter_valid(study.run(minutes=args.study_hours * 60))
    for kind, label in (("ACK", "separate IACK"), ("SH", "separate SH"),
                        ("ACK,SH", "coalesced ACK-SH")):
        latencies = [s.sh_latency_ms or s.ack_latency_ms
                     for s in samples if s.kind == kind]
        print(f"  {label:18s} {summarize(latencies).format()}")
    gaps = [s.sh_latency_ms - s.ack_latency_ms for s in samples
            if s.kind == "SH" and s.sh_latency_ms and s.ack_latency_ms]
    print(f"  median IACK->SH gap: {median(gaps):.2f} ms "
          "(paper: 2.1 ms in Sao Paulo)")


if __name__ == "__main__":
    main()
