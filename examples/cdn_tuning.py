#!/usr/bin/env python3
"""CDN deployment advisor: should *your* frontend enable instant ACK?

Feeds a concrete deployment (certificate size, client RTT, frontend to
certificate-store delay) through the paper's Table 2 decision
procedure and the Figure 4 sweet-spot analysis, then validates the
recommendation with a pair of emulated handshakes run through the
``repro.api`` façade.

    python examples/cdn_tuning.py --cert-size 1212 --rtt 9 --delta-t 20
"""

import argparse

from repro.api import Session
from repro.core.advisor import DeploymentAdvisor, LossScenario
from repro.core.pto_model import first_pto_reduction
from repro.core.sweet_spot import classify_impact, reduced_latency_zone_boundary_ms
from repro.interop import Scenario
from repro.quic.certs import Certificate
from repro.quic.server import ServerMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cert-size", type=int, default=1212,
                        help="certificate chain size [bytes]")
    parser.add_argument("--rtt", type=float, default=9.0,
                        help="typical client-frontend RTT [ms]")
    parser.add_argument("--delta-t", type=float, default=20.0,
                        help="frontend to certificate-store delay [ms]")
    args = parser.parse_args()

    advisor = DeploymentAdvisor()
    print(f"deployment: cert={args.cert_size}B rtt={args.rtt}ms "
          f"delta_t={args.delta_t}ms")
    print("certificate exceeds 3x amplification budget: "
          f"{advisor.certificate_exceeds_budget(args.cert_size)}")
    print("spurious-retransmit boundary (3 x RTT): "
          f"{reduced_latency_zone_boundary_ms(args.rtt):.1f} ms")
    print("expected first-PTO reduction from IACK: "
          f"{first_pto_reduction(args.rtt, args.delta_t):.1f} ms")
    print("impact class: "
          f"{classify_impact(args.rtt, args.delta_t).value}\n")

    print("Table 2 advice per scenario:")
    for loss in LossScenario:
        advice = advisor.advise(args.cert_size, args.rtt, args.delta_t, loss)
        print(f"  {loss.value:40s} -> {advice.recommendation.value}")
        print(f"    {advice.reason}")

    print("\nEmulated validation (no loss):")
    certificate = Certificate(name="custom", chain_size=args.cert_size)
    ttfbs = {}
    with Session() as session:
        for mode in (ServerMode.WFC, ServerMode.IACK):
            scenario = Scenario(
                client="quic-go", mode=mode, http="h3", rtt_ms=args.rtt,
                delta_t_ms=args.delta_t, certificate=certificate,
            )
            artifacts = session.run_once(scenario, seed=1)
            ttfbs[mode] = artifacts.ttfb_ms
            print(f"  {mode.name:4s}: TTFB {artifacts.ttfb_ms:7.2f} ms  "
                  f"first PTO {artifacts.client_stats.first_pto_ms:6.1f} ms  "
                  f"probes {artifacts.client_stats.probes_sent}")
    no_loss = advisor.advise(args.cert_size, args.rtt, args.delta_t,
                             LossScenario.NONE)
    print(f"\nadvice for the no-loss case: {no_loss.recommendation.value}")


if __name__ == "__main__":
    main()
