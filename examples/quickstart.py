#!/usr/bin/env python3
"""Quickstart: one QUIC handshake, instant ACK versus wait-for-certificate.

Runs the same emulated connection twice through the ``repro.api``
façade — once with a WFC server and once with an IACK server — and
prints the timeline observables the paper is built on: the first RTT
sample, the first PTO, and the TTFB.

    python examples/quickstart.py [--rtt 9] [--delta-t 25] [--client quic-go]
"""

import argparse

from repro.api import Session
from repro.interop import Scenario
from repro.quic.server import ServerMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rtt", type=float, default=9.0, help="path RTT [ms]")
    parser.add_argument(
        "--delta-t", type=float, default=25.0,
        help="frontend to certificate-store delay [ms]",
    )
    parser.add_argument("--client", default="quic-go")
    parser.add_argument("--http", default="h1", choices=["h1", "h3"])
    parser.add_argument("--trace", action="store_true", help="dump packet trace")
    args = parser.parse_args()

    print(
        f"client={args.client} http={args.http} rtt={args.rtt}ms "
        f"delta_t={args.delta_t}ms\n"
    )
    with Session() as session:
        for mode in (ServerMode.WFC, ServerMode.IACK):
            scenario = Scenario(
                client=args.client,
                mode=mode,
                http=args.http,
                rtt_ms=args.rtt,
                delta_t_ms=args.delta_t,
            )
            artifacts = session.run_once(scenario, seed=1)
            stats = artifacts.client_stats
            print(f"== {mode.value} ==")
            print(f"  first ACK received   : {stats.relative(stats.first_ack_received_ms):8.2f} ms"
                  f"  (coalesced with SH: {stats.first_ack_coalesced_with_sh})")
            print(f"  ServerHello received : {stats.relative(stats.server_hello_received_ms):8.2f} ms")
            print(f"  first RTT sample     : {stats.first_rtt_sample_ms:8.2f} ms")
            print(f"  first PTO            : {stats.first_pto_ms:8.2f} ms")
            print(f"  handshake complete   : {stats.relative(stats.handshake_complete_ms):8.2f} ms")
            print(f"  time to first byte   : {stats.ttfb_relative_ms:8.2f} ms")
            print(f"  transfer complete    : {stats.relative(stats.response_complete_ms):8.2f} ms")
            if args.trace:
                print(artifacts.tracer.dump())
            print()
    print(
        "The WFC first PTO is inflated by ~3 x delta_t — the protocol-level\n"
        "effect the paper quantifies (its Figure 2)."
    )


if __name__ == "__main__":
    main()
