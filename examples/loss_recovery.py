#!/usr/bin/env python3
"""Loss-scenario explorer: when does instant ACK help, when does it hurt?

Reproduces the paper's two headline loss experiments for one client
through the ``repro.api`` façade:

* losing the tail of the first *server* flight (Figure 6) — WFC wins,
  because the instant ACK gave the server no RTT sample;
* losing the entire second *client* flight (Figure 7) — IACK wins,
  because the client's accurate first PTO resends the request sooner.

    python examples/loss_recovery.py [--client quic-go] [--rtt 9] [--reps 15]
"""

import argparse

from repro.analysis.stats import summarize
from repro.api import LocalConfig, Session
from repro.interop import (
    Scenario,
    first_server_flight_tail_loss,
    second_client_flight_loss,
)
from repro.quic.server import ServerMode


def run_scenario(session, client, rtt, reps, mode, **loss):
    scenario = Scenario(client=client, mode=mode, http="h1", rtt_ms=rtt, **loss)
    results = session.run_repetitions(scenario, repetitions=reps)
    ttfbs = [r.ttfb_ms for r in results]
    aborted = sum(1 for r in results if r.client_stats.aborted)
    return summarize(ttfbs), aborted


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--client", default="quic-go")
    parser.add_argument("--rtt", type=float, default=9.0)
    parser.add_argument("--reps", type=int, default=15)
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = in-process)")
    args = parser.parse_args()

    print(f"client={args.client} rtt={args.rtt}ms reps={args.reps}\n")
    with Session(LocalConfig(workers=args.workers)) as session:
        print("Scenario A: first server flight lost except its first datagram")
        for mode in (ServerMode.WFC, ServerMode.IACK):
            summary, aborted = run_scenario(
                session, args.client, args.rtt, args.reps, mode,
                server_to_client_loss=first_server_flight_tail_loss(mode),
            )
            print(f"  {mode.name:4s}: TTFB {summary.format()}  aborted={aborted}")
        print(
            "  -> WFC recovers on a ~3xRTT PTO; with IACK the server has no RTT\n"
            "     sample and waits for its 200 ms default PTO (paper Fig. 6).\n"
        )

        print("Scenario B: entire second client flight lost")
        for mode in (ServerMode.WFC, ServerMode.IACK):
            summary, aborted = run_scenario(
                session, args.client, args.rtt, args.reps, mode,
                client_to_server_loss=second_client_flight_loss(args.client),
            )
            print(f"  {mode.name:4s}: TTFB {summary.format()}  aborted={aborted}")
        print(
            "  -> The instant ACK shortened the client PTO, so the lost request\n"
            "     is retransmitted sooner (paper Fig. 7)."
        )


if __name__ == "__main__":
    main()
